#include "experiments/harness.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "bound/held_karp.h"
#include "tsp/tour.h"
#include "util/rng.h"
#include "util/sync.h"

namespace distclk {

Args::Args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) argv_.emplace_back(argv[i]);
}

bool Args::has(const std::string& flag) const {
  return std::find(argv_.begin(), argv_.end(), "--" + flag) != argv_.end();
}

std::string Args::getString(const std::string& flag,
                            const std::string& def) const {
  const auto it = std::find(argv_.begin(), argv_.end(), "--" + flag);
  if (it == argv_.end() || it + 1 == argv_.end()) return def;
  return *(it + 1);
}

int Args::getInt(const std::string& flag, int def) const {
  const std::string v = getString(flag, "");
  return v.empty() ? def : std::stoi(v);
}

double Args::getDouble(const std::string& flag, double def) const {
  const std::string v = getString(flag, "");
  return v.empty() ? def : std::stod(v);
}

BenchConfig BenchConfig::fromArgs(const Args& args) {
  BenchConfig cfg;
  cfg.full = args.has("full");
  if (cfg.full) {
    // Paper scale (still wall-clock bounded, just much longer).
    cfg.runs = 10;
    cfg.clkBudget = 100.0;
    cfg.distBudget = 10.0;
    cfg.maxN = 100000;
  }
  cfg.runs = args.getInt("runs", cfg.runs);
  cfg.clkBudget = args.getDouble("clk-budget", cfg.clkBudget);
  cfg.distBudget = args.getDouble("dist-budget", cfg.distBudget);
  cfg.nodes = args.getInt("nodes", cfg.nodes);
  cfg.maxN = args.getInt("max-n", cfg.maxN);
  cfg.seed = static_cast<std::uint64_t>(args.getInt("seed", 12345));
  cfg.csvDir = args.getString("csv-dir", "");
  return cfg;
}

int BenchConfig::sizeFor(const PaperInstance& spec) const {
  return std::min(spec.n, maxN);
}

double BenchConfig::clkBudgetFor(const PaperInstance& spec) const {
  // Paper: 1e4 s below 1e4 cities, 1e5 s above — a 10x ratio we keep.
  return spec.n < 10000 ? clkBudget : clkBudget * 10.0;
}

double BenchConfig::distBudgetFor(const PaperInstance& spec) const {
  return spec.n < 10000 ? distBudget : distBudget * 10.0;
}

ClkRunSummary runClkExperiment(const Instance& inst,
                               const CandidateLists& cand, KickStrategy kick,
                               double seconds, std::int64_t target,
                               std::uint64_t seed) {
  return runClkExperiment(*InstanceContext::borrow(inst, cand), kick, seconds,
                          target, seed);
}

ClkRunSummary runClkExperiment(const InstanceContext& ctx, KickStrategy kick,
                               double seconds, std::int64_t target,
                               std::uint64_t seed) {
  const Instance& inst = ctx.instance();
  const CandidateLists& cand = ctx.candidates();
  Rng rng(seed);
  Tour tour(inst, ctx.constructionOrder());
  ClkOptions opt;
  opt.kick = kick;
  opt.timeLimitSeconds = seconds;
  opt.targetLength = target;
  ClkRunSummary summary;
  summary.curve.push_back({0.0, tour.length()});  // construction state
  const ClkResult res = chainedLinKernighan(
      tour, cand, rng, opt, [&](double t, std::int64_t len) {
        summary.curve.push_back({t, len});
      });
  summary.finalLength = res.length;
  summary.hitTarget = res.hitTarget;
  summary.targetTime = res.hitTarget ? res.seconds : 0.0;
  return summary;
}

SimResult runDistExperiment(const Instance& inst, const CandidateLists& cand,
                            KickStrategy kick, int nodes, double secondsPerNode,
                            std::int64_t target, std::uint64_t seed) {
  SimOptions opt;
  opt.nodes = nodes;
  opt.node = scaledNodeParams(inst);
  opt.node.clkKick = kick;
  opt.node.targetLength = target;
  opt.timeLimitPerNode = secondsPerNode;
  opt.seed = seed;
  return runSimulatedDistClk(inst, cand, opt);
}

DistParams scaledNodeParams(const Instance& inst) {
  DistParams p;
  // linkern's default of one kick per city makes each EA step cost a whole
  // CLK run — fine with the paper's 10^3-second budgets, but at laptop
  // scale the EA must iterate (and exchange tours) many times per run.
  p.clkKicksPerCall = std::max(16, inst.n() / 16);
  return p;
}

std::vector<std::pair<int, double>> parseSchedule(const std::string& spec,
                                                  const std::string& flag) {
  std::vector<std::pair<int, double>> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    const std::size_t colon = item.find(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == item.size())
      throw std::invalid_argument(flag + ": expected NODE:TIME, got '" + item +
                                  "'");
    out.emplace_back(std::stoi(item.substr(0, colon)),
                     std::stod(item.substr(colon + 1)));
    pos = comma + 1;
  }
  return out;
}

namespace {

std::vector<double> parseSpeeds(const std::string& spec) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    out.push_back(std::stod(spec.substr(pos, comma - pos)));
    pos = comma + 1;
  }
  return out;
}

}  // namespace

RunConfig runConfigFromArgs(const Args& args, const Instance& inst) {
  RunConfig cfg;
  cfg.runtime = runtimeKindFromString(args.getString("runtime", "sim"));
  cfg.nodes = args.getInt("nodes", cfg.nodes);
  cfg.topology = topologyFromString(args.getString("topology", "hypercube"));
  cfg.node = scaledNodeParams(inst);
  cfg.node.clkKick =
      kickStrategyFromString(args.getString("kick", "Random-walk"));
  cfg.node.speculativeWorkers = args.getInt("spec-workers", 0);
  cfg.timeLimitPerNode = args.getDouble("seconds", 2.0);
  cfg.latencySeconds = args.getDouble("latency", cfg.latencySeconds);
  cfg.seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
  const double modeledWork = args.getDouble("modeled-work", 0.0);
  if (modeledWork > 0.0) {
    cfg.costModel = CostModel::kModeled;
    cfg.modeledWorkPerSecond = modeledWork;
  }
  cfg.metricsIntervalSeconds = args.getDouble("metrics-interval", 0.0);
  cfg.stallSeconds = args.getDouble("stall", 0.0);
  cfg.metricsOutPath = args.getString("metrics-out", "");
  const std::string fail = args.getString("fail", "");
  if (!fail.empty()) cfg.failures = parseSchedule(fail, "--fail");
  const std::string join = args.getString("join", "");
  if (!join.empty()) cfg.joins = parseSchedule(join, "--join");
  const std::string speeds = args.getString("speeds", "");
  if (!speeds.empty()) cfg.nodeSpeeds = parseSpeeds(speeds);
  return cfg;
}

PreprocessParams preprocessParamsFromArgs(const Args& args) {
  PreprocessParams p;
  p.candidateK = args.getInt("candidates", p.candidateK);
  if (args.has("quadrant")) p.kind = CandidateLists::Kind::kQuadrant;
  p.prepThreads = args.getInt("prep-threads", p.prepThreads);
  p.partitionShards = args.getInt("prep-partition", p.partitionShards);
  return p;
}

std::shared_ptr<const InstanceContext> makeContext(
    Instance inst, const PreprocessParams& params) {
  return InstanceContext::build(
      std::make_shared<const Instance>(std::move(inst)), params);
}

double referenceLength(const PaperInstance& spec, const Instance& inst) {
  if (spec.presumedOptimum > 0 && inst.n() == spec.n)
    return static_cast<double>(spec.presumedOptimum);
  // Cache Held-Karp bounds per (name, n) — several benches share instances.
  // Concurrent misses may both compute the bound; the second write stores
  // the identical (deterministic) value, so dropping the lock between
  // lookup and insert is benign.
  static std::map<std::pair<std::string, int>, double> cache;
  static sync::Mutex mu(sync::LockRank::kHarnessCache, "harness.refCache");
  const auto key = std::make_pair(inst.name(), inst.n());
  {
    const sync::MutexLock lock(mu);
    if (const auto it = cache.find(key); it != cache.end()) return it->second;
  }
  HeldKarpOptions opt;
  opt.iterations = inst.n() > 5000 ? 50 : 150;
  const double bound = heldKarpBound(inst, opt).bound;
  const sync::MutexLock lock(mu);
  cache[key] = bound;
  return bound;
}

std::int64_t calibrateReference(const Instance& inst,
                                const CandidateLists& cand,
                                double secondsPerNode, std::uint64_t seed) {
  SimOptions opt;
  opt.nodes = 8;
  opt.topology = TopologyKind::kComplete;  // fastest tour spread
  opt.node = scaledNodeParams(inst);
  opt.timeLimitPerNode = secondsPerNode;
  opt.seed = seed;
  return runSimulatedDistClk(inst, cand, opt).bestLength;
}

double excess(std::int64_t length, double reference) {
  return static_cast<double>(length) / reference - 1.0;
}

}  // namespace distclk
