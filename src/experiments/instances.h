// Registry of the paper's testbed (§3) mapped to seeded synthetic
// stand-ins (TSPLIB is not shipped; see DESIGN.md "Substitutions").
// Every stand-in carries the structural family of its original, the paper's
// published reference data for that instance, and a calibrated presumed
// optimum (best length ever found by long calibration runs of our own
// solvers — playing the role of the known optima the paper tests against).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "tsp/instance.h"

namespace distclk {

enum class InstanceFamily {
  kUniform,        ///< DIMACS E-family
  kClustered,      ///< DIMACS C-family
  kDrillPlate,     ///< TSPLIB fl*
  kBoardGrid,      ///< TSPLIB pr*/pcb*
  kRoadNetwork,    ///< national TSPs and fnl/usa
};

struct PaperInstance {
  std::string paperName;    ///< e.g. "fl3795"
  std::string standinName;  ///< e.g. "fl3795s"
  int n = 0;                ///< city count (same as the original)
  InstanceFamily family = InstanceFamily::kUniform;
  std::uint64_t seed = 0;   ///< generator seed (fixed: stand-ins are stable)
  /// Calibrated presumed optimum of the stand-in; -1 before calibration.
  std::int64_t presumedOptimum = -1;
  /// True for the instances whose optimum the paper did NOT know (it used
  /// Held-Karp bounds for these: fi10639, pla33810, pla85900).
  bool paperUsedHkBound = false;
  /// Part of the paper's "small" set (Table 3: everything up to fnl4461).
  bool smallSet = false;
};

/// The full 12-instance testbed of §3, in the paper's order.
const std::vector<PaperInstance>& paperTestbed();

/// Lookup by paper name or stand-in name; nullptr when unknown.
const PaperInstance* findPaperInstance(const std::string& name);

/// Builds the synthetic stand-in (deterministic in the registry seed).
Instance makeInstance(const PaperInstance& spec);

/// Builds a smaller instance of the same family/seed lineage, used by the
/// default (laptop-scale) bench configuration; `n` overrides the size.
Instance makeScaledInstance(const PaperInstance& spec, int n);

}  // namespace distclk
