#include "experiments/instances.h"

#include <stdexcept>

#include "tsp/gen.h"

namespace distclk {

namespace {

// Presumed optima are calibrated by tools/calibrate (long multi-restart
// distributed runs); -1 marks "not yet calibrated". Values are exact tour
// lengths of the seeded stand-ins, NOT of the TSPLIB originals.
std::vector<PaperInstance> buildTestbed() {
  return {
      {"C1k.1", "C1k.1s", 1000, InstanceFamily::kClustered, 101, 8663976,
       false, true},
      {"E1k.1", "E1k.1s", 1000, InstanceFamily::kUniform, 102, 23164272,
       false, true},
      {"fl1577", "fl1577s", 1577, InstanceFamily::kDrillPlate, 103, 15290435,
       false, true},
      {"pr2392", "pr2392s", 2392, InstanceFamily::kBoardGrid, 104, 38454332,
       false, true},
      {"pcb3038", "pcb3038s", 3038, InstanceFamily::kBoardGrid, 105, 43118023,
       false, true},
      {"fl3795", "fl3795s", 3795, InstanceFamily::kDrillPlate, 106, 24607209,
       false, true},
      {"fnl4461", "fnl4461s", 4461, InstanceFamily::kRoadNetwork, 107, 27652825,
       false, true},
      {"fi10639", "fi10639s", 10639, InstanceFamily::kRoadNetwork, 108, -1,
       true, false},
      {"usa13509", "usa13509s", 13509, InstanceFamily::kRoadNetwork, 109, -1,
       false, false},
      {"sw24978", "sw24978s", 24978, InstanceFamily::kRoadNetwork, 110, -1,
       false, false},
      {"pla33810", "pla33810s", 33810, InstanceFamily::kDrillPlate, 111, -1,
       true, false},
      {"pla85900", "pla85900s", 85900, InstanceFamily::kDrillPlate, 112, -1,
       true, false},
  };
}

}  // namespace

const std::vector<PaperInstance>& paperTestbed() {
  static const std::vector<PaperInstance> testbed = buildTestbed();
  return testbed;
}

const PaperInstance* findPaperInstance(const std::string& name) {
  for (const auto& spec : paperTestbed())
    if (spec.paperName == name || spec.standinName == name) return &spec;
  return nullptr;
}

Instance makeScaledInstance(const PaperInstance& spec, int n) {
  switch (spec.family) {
    case InstanceFamily::kUniform:
      return uniformSquare(spec.standinName, n, spec.seed);
    case InstanceFamily::kClustered:
      return clustered(spec.standinName, n, 10, spec.seed);
    case InstanceFamily::kDrillPlate:
      return drillPlate(spec.standinName, n, spec.seed);
    case InstanceFamily::kBoardGrid:
      return perforatedGrid(spec.standinName, n, spec.seed);
    case InstanceFamily::kRoadNetwork:
      return roadNetwork(spec.standinName, n, spec.seed);
  }
  throw std::logic_error("makeScaledInstance: bad family");
}

Instance makeInstance(const PaperInstance& spec) {
  return makeScaledInstance(spec, spec.n);
}

}  // namespace distclk
