// Shared experiment plumbing for the bench binaries: a tiny CLI-flag
// parser, wrappers that run one ABCC-CLK / DistCLK experiment and return an
// anytime curve, and reference-quality helpers (Held-Karp bounds, excess
// percentages). Every table/figure bench is a thin composition of these.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/dist_clk.h"
#include "core/trace.h"
#include "experiments/instances.h"
#include "lk/chained_lk.h"
#include "tsp/instance.h"
#include "tsp/instance_context.h"
#include "tsp/neighbors.h"

namespace distclk {

/// Minimal `--flag value` / `--flag` parser for the bench mains.
class Args {
 public:
  Args(int argc, char** argv);

  bool has(const std::string& flag) const;
  int getInt(const std::string& flag, int def) const;
  double getDouble(const std::string& flag, double def) const;
  std::string getString(const std::string& flag, const std::string& def) const;

 private:
  std::vector<std::string> argv_;
};

/// Scaled experiment configuration shared by the benches. The defaults
/// reproduce the paper's shape at laptop scale; --full switches to the
/// paper's instance sizes, --runs/--budget adjust repetition and time.
struct BenchConfig {
  int runs = 2;              ///< repetitions per cell (paper: 10)
  double clkBudget = 1.0;    ///< ABCC-CLK seconds (paper: 1e4 / 1e5)
  double distBudget = 0.1;   ///< DistCLK seconds/node (paper keeps 10:1)
  int nodes = 8;
  int maxN = 1600;           ///< instances are scaled down to at most this n
  bool full = false;         ///< run the paper's true sizes/budgets
  std::uint64_t seed = 12345;
  std::string csvDir;        ///< when set, benches mirror tables to CSV

  static BenchConfig fromArgs(const Args& args);
  /// Instance size used for a spec under this config.
  int sizeFor(const PaperInstance& spec) const;
  /// CLK budget for a spec (paper rule: 10x for >= 10^4 cities).
  double clkBudgetFor(const PaperInstance& spec) const;
  double distBudgetFor(const PaperInstance& spec) const;
};

/// One ABCC-CLK run; returns the anytime curve of champion improvements.
struct ClkRunSummary {
  std::int64_t finalLength = 0;
  bool hitTarget = false;
  double targetTime = 0.0;
  AnytimeCurve curve;
};
ClkRunSummary runClkExperiment(const Instance& inst,
                               const CandidateLists& cand, KickStrategy kick,
                               double seconds, std::int64_t target,
                               std::uint64_t seed);
/// Context-based variant: starts from the context's cached construction
/// order. The (Instance, CandidateLists) overload wraps its references in
/// a borrowed context and forwards here — one preprocessing build path.
ClkRunSummary runClkExperiment(const InstanceContext& ctx, KickStrategy kick,
                               double seconds, std::int64_t target,
                               std::uint64_t seed);

/// One DistCLK run under the discrete-event simulator, with EA step costs
/// scaled for laptop budgets (see scaledNodeParams).
SimResult runDistExperiment(const Instance& inst, const CandidateLists& cand,
                            KickStrategy kick, int nodes, double secondsPerNode,
                            std::int64_t target, std::uint64_t seed);

/// Node parameters with the inner-CLK kick budget scaled to the instance
/// (n/16 kicks per EA step instead of linkern's n), so scaled runs perform
/// many EA iterations. Benches that build SimOptions directly start here.
DistParams scaledNodeParams(const Instance& inst);

/// Shared distributed-run CLI: builds a RunConfig from the flags every
/// dist-capable binary accepts, with scaledNodeParams(inst) as the node
/// baseline. Used by examples/distclk_cli and examples/distributed_solve so
/// the flag set (and its parsing quirks) exists exactly once.
///
///   --runtime R           sim | threads (default sim)
///   --nodes K             node count (default 8)
///   --topology T          hypercube|ring|grid|complete|star
///   --seconds S           time budget per node (default 2)
///   --seed S              solver seed (default 1)
///   --kick K              inner-CLK kick strategy (default Random-walk)
///   --latency S           sim link latency in seconds
///   --modeled-work R      charge modeled cost (R units/s) instead of
///                         measured wall time (sim only; deterministic)
///   --metrics-interval S  periodic metric snapshots in the trace (also
///                         paces node-best series and --metrics-out)
///   --metrics-out FILE    live Prometheus-style snapshot, atomically
///                         renamed into FILE every metrics interval
///   --stall S             stall detector: log a stall event after S
///                         seconds without improvement (0 = off)
///   --fail N:T[,N:T...]   failure schedule (node N dies at time T)
///   --join N:T[,N:T...]   churn schedule (node N joins at time T)
///   --speeds S0,S1,...    relative node speeds (one per node)
///
/// Throws std::invalid_argument on malformed values.
RunConfig runConfigFromArgs(const Args& args, const Instance& inst);

/// Preprocessing parameters from the shared CLI flags:
///   --candidates K      candidate-list size (default 10)
///   --quadrant          quadrant-neighbor candidates instead of nearest
///   --prep-threads T    preprocessing build parallelism (kd-tree,
///                       candidate shards, partitioned construction);
///                       default 1 = the exact serial path, any T produces
///                       byte-identical preprocessing (DESIGN.md §13)
///   --prep-partition S  construct with the Hilbert-partitioned
///                       Quick-Borůvka over S shards (changes the
///                       construction tour; default 0 = serial QB)
PreprocessParams preprocessParamsFromArgs(const Args& args);

/// THE per-instance preprocessing build path for drivers that own their
/// instance: moves it into shared ownership and builds the context
/// (candidates + kd-tree + construction tour in one place). Examples and
/// benches go through here (or InstanceContext::build directly) rather
/// than constructing CandidateLists / Quick-Borůvka tours ad hoc.
std::shared_ptr<const InstanceContext> makeContext(
    Instance inst, const PreprocessParams& params = {});

/// Parses a "--fail"/"--join" style schedule: "N:T[,N:T...]".
std::vector<std::pair<int, double>> parseSchedule(const std::string& spec,
                                                  const std::string& flag);

/// Reference length for excess computations: the calibrated presumed
/// optimum when available, else a Held-Karp bound computed (and cached per
/// process) for the given instance. NOTE: on heavily clustered families the
/// HK duality gap is large (several percent — verified against exact DP),
/// so quality tables should prefer calibrateReference().
double referenceLength(const PaperInstance& spec, const Instance& inst);

/// Presumed optimum by calibration: a cooperative DistCLK run on a complete
/// topology with the given per-node budget. Plays the role of the paper's
/// known optima for the synthetic stand-ins; combine with observed run
/// results via std::min for the tightest reference.
std::int64_t calibrateReference(const Instance& inst,
                                const CandidateLists& cand,
                                double secondsPerNode, std::uint64_t seed);

/// (length / reference) - 1, the paper's "distance to optimum".
double excess(std::int64_t length, double reference);

}  // namespace distclk
