#include "obs/report.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

namespace distclk::obs {

namespace {

constexpr std::size_t kMaxProblems = 20;

void addProblem(std::vector<std::string>& problems, std::string msg) {
  if (problems.size() < kMaxProblems) {
    problems.push_back(std::move(msg));
  } else if (problems.size() == kMaxProblems) {
    problems.push_back("... further problems suppressed");
  }
}

bool carriesLength(NodeEventType t) noexcept {
  return t == NodeEventType::kInitialTour ||
         t == NodeEventType::kImprovement ||
         t == NodeEventType::kBroadcastSent ||
         t == NodeEventType::kTourReceived;
}

/// One step of a node's local best-length timeline, annotated with how the
/// value arrived (locally vs via an adopted broadcast) for hop analysis.
struct CoverEntry {
  double t = 0.0;
  std::int64_t len = 0;
  bool viaReceive = false;
  int from = -1;  ///< adopting sender when known, else -1
};

/// Per-node timelines of best-length changes, time-sorted. Receive entries
/// are annotated with the sender from the matching adopt record (a node's
/// best strictly decreases on adoption, so (node, len) identifies it).
std::map<int, std::vector<CoverEntry>> coverTimelines(
    const LoadedTrace& trace) {
  std::map<std::pair<int, std::int64_t>, int> adoptSender;
  for (const TraceAdopt& a : trace.adopts) {
    adoptSender.emplace(std::pair<int, std::int64_t>{a.node, a.len}, a.from);
  }
  std::map<int, std::vector<CoverEntry>> timelines;
  for (const NodeEvent& e : trace.events) {
    if (!carriesLength(e.type)) continue;
    CoverEntry entry{e.time, e.value, e.type == NodeEventType::kTourReceived,
                     -1};
    if (entry.viaReceive) {
      const auto it = adoptSender.find({e.node, e.value});
      if (it != adoptSender.end()) entry.from = it->second;
    }
    timelines[e.node].push_back(entry);
  }
  for (const TraceNodeBest& s : trace.series) {
    timelines[s.node].push_back(CoverEntry{s.t, s.len, false, -1});
  }
  for (auto& [node, entries] : timelines) {
    (void)node;
    std::stable_sort(entries.begin(), entries.end(),
                     [](const CoverEntry& a, const CoverEntry& b) {
                       if (a.t != b.t) return a.t < b.t;
                       return a.len > b.len;
                     });
  }
  return timelines;
}

/// First time the timeline reaches length <= target; nullopt when never.
std::optional<CoverEntry> firstAtOrBelow(const std::vector<CoverEntry>& tl,
                                         std::int64_t target) {
  for (const CoverEntry& e : tl) {
    if (e.len <= target) return e;
  }
  return std::nullopt;
}

}  // namespace

int LoadedTrace::nodeCount() const {
  if (meta.has_value()) {
    const std::int64_t n = meta->integer("nodes");
    if (n > 0) return static_cast<int>(n);
  }
  int maxNode = -1;
  for (const NodeEvent& e : events) maxNode = std::max(maxNode, e.node);
  for (const TraceMsgSent& s : sent) maxNode = std::max(maxNode, s.node);
  for (const TraceMsgRecv& r : recv) {
    maxNode = std::max(maxNode, std::max(r.node, r.from));
  }
  for (const TraceAdopt& a : adopts) {
    maxNode = std::max(maxNode, std::max(a.node, a.from));
  }
  for (const TraceNodeBest& s : series) maxNode = std::max(maxNode, s.node);
  return maxNode + 1;
}

LoadedTrace loadTrace(std::istream& in) {
  LoadedTrace trace;
  std::string line;
  std::int64_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    if (line.empty()) continue;
    JsonValue v;
    try {
      v = parseJson(line);
    } catch (const std::exception& e) {
      ++trace.badLines;
      addProblem(trace.problems, "line " + std::to_string(lineNo) +
                                     ": unparseable JSON (" + e.what() + ")");
      continue;
    }
    if (!v.isObject()) {
      ++trace.badLines;
      addProblem(trace.problems,
                 "line " + std::to_string(lineNo) + ": not a JSON object");
      continue;
    }
    const std::string type = v.str("type");
    // Index of the run bracket currently open; new message records are
    // stamped with it so validation can scope causality per run.
    const int curRun = static_cast<int>(trace.runs.size()) - 1;
    if (type == "run-meta") {
      if (!trace.meta.has_value()) trace.meta = v;
      trace.runs.push_back(TraceRun{});
      trace.runs.back().meta = std::move(v);
    } else if (type == "run-end") {
      if (!trace.runs.empty() && !trace.runs.back().runEnd.has_value()) {
        trace.runs.back().runEnd = v;
      } else {
        ++trace.strayRunEnds;
      }
      trace.runEnd = std::move(v);
    } else if (type == "metrics") {
      trace.lastMetrics = std::move(v);
    } else if (type == "event") {
      const std::string name = v.str("event");
      const std::optional<NodeEventType> et = nodeEventTypeFromString(name);
      if (!et.has_value()) {
        ++trace.badLines;
        addProblem(trace.problems, "line " + std::to_string(lineNo) +
                                       ": unknown event type \"" + name +
                                       "\"");
        continue;
      }
      trace.events.push_back(NodeEvent{
          v.num("t"), static_cast<int>(v.integer("node", -1)), *et,
          v.integer("value")});
    } else if (type == "msg-sent") {
      trace.sent.push_back(TraceMsgSent{
          v.num("t"), static_cast<int>(v.integer("node", -1)),
          static_cast<std::uint64_t>(v.integer("seq")),
          static_cast<std::uint64_t>(v.integer("lamport")), v.integer("len"),
          v.integer("bytes"), curRun});
    } else if (type == "msg-recv") {
      trace.recv.push_back(TraceMsgRecv{
          v.num("t"), static_cast<int>(v.integer("node", -1)),
          static_cast<int>(v.integer("from", -1)),
          static_cast<std::uint64_t>(v.integer("seq")),
          static_cast<std::uint64_t>(v.integer("lamport")),
          static_cast<std::uint64_t>(v.integer("recv_lamport")),
          v.integer("len"), curRun});
    } else if (type == "adopt") {
      trace.adopts.push_back(TraceAdopt{
          v.num("t"), static_cast<int>(v.integer("node", -1)),
          static_cast<int>(v.integer("from", -1)), v.integer("len")});
    } else if (type == "node-best") {
      trace.series.push_back(TraceNodeBest{
          v.num("t"), static_cast<int>(v.integer("node", -1)),
          v.integer("len"), v.integer("no_improve")});
    } else if (type == "job") {
      const JsonValue* hit = v.find("cache_hit");
      trace.jobs.push_back(TraceJob{
          v.num("t"), v.str("id"), v.str("state"),
          static_cast<int>(v.integer("priority")), v.integer("best"),
          v.num("queue_seconds"), v.num("setup_seconds"),
          v.num("solve_seconds"),
          hit != nullptr && hit->kind == JsonValue::Kind::kBool &&
              hit->boolean,
          v.num("prep_kdtree_ms"), v.num("prep_cand_ms"),
          v.num("prep_construct_ms")});
    } else {
      ++trace.badLines;
      addProblem(trace.problems, "line " + std::to_string(lineNo) +
                                     ": unknown record type \"" + type +
                                     "\"");
      continue;
    }
    ++trace.parsedLines;
  }
  std::stable_sort(trace.events.begin(), trace.events.end(),
                   [](const NodeEvent& a, const NodeEvent& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.node < b.node;
                   });
  return trace;
}

AnytimeCurve globalBestCurve(const LoadedTrace& trace) {
  AnytimeCurve curve;
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  for (const NodeEvent& e : trace.events) {
    if (!carriesLength(e.type)) continue;
    if (e.value < best) {
      best = e.value;
      curve.push_back(AnytimePoint{e.time, best});
    }
  }
  return curve;
}

std::map<int, AnytimeCurve> nodeBestCurves(const LoadedTrace& trace) {
  std::map<int, AnytimeCurve> curves;
  for (const auto& [node, timeline] : coverTimelines(trace)) {
    AnytimeCurve& curve = curves[node];
    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    for (const CoverEntry& e : timeline) {
      if (e.len < best) {
        best = e.len;
        curve.push_back(AnytimePoint{e.t, best});
      }
    }
  }
  return curves;
}

std::vector<PropagationSummary> propagationSummaries(
    const LoadedTrace& trace) {
  const int total = trace.nodeCount();
  const std::map<int, std::vector<CoverEntry>> timelines =
      coverTimelines(trace);

  // Global improvements, each tagged with the node whose event set it.
  struct Improvement {
    double t0;
    std::int64_t len;
    int origin;
  };
  std::vector<Improvement> improvements;
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  for (const NodeEvent& e : trace.events) {
    if (!carriesLength(e.type)) continue;
    if (e.value < best) {
      best = e.value;
      improvements.push_back(Improvement{e.time, best, e.node});
    }
  }

  std::vector<PropagationSummary> out;
  out.reserve(improvements.size());
  for (const Improvement& imp : improvements) {
    PropagationSummary s;
    s.len = imp.len;
    s.origin = imp.origin;
    s.t0 = imp.t0;
    s.total = total;

    // Coverage: for every node, the first timeline step at or below the
    // improvement's length (the value may arrive via an even better tour).
    struct Covered {
      int node;
      CoverEntry entry;
    };
    std::vector<Covered> covered;
    for (const auto& [node, timeline] : timelines) {
      const std::optional<CoverEntry> entry =
          firstAtOrBelow(timeline, imp.len);
      if (entry.has_value()) covered.push_back(Covered{node, *entry});
    }
    std::sort(covered.begin(), covered.end(),
              [](const Covered& a, const Covered& b) {
                if (a.entry.t != b.entry.t) return a.entry.t < b.entry.t;
                return a.node < b.node;
              });

    // Hop depth in coverage order: the origin (and any independent local
    // discovery) is depth 0; a node covered by an adopted tour sits one
    // past its sender; an adopted tour with unknown sender counts as 1.
    std::map<int, int> hops;
    for (const Covered& c : covered) {
      int hop = 0;
      if (c.node == s.origin) {
        hop = 0;
      } else if (c.entry.viaReceive) {
        const auto it =
            c.entry.from >= 0 ? hops.find(c.entry.from) : hops.end();
        hop = it != hops.end() ? it->second + 1 : 1;
      }
      hops[c.node] = hop;
      s.maxHops = std::max(s.maxHops, hop);
    }

    s.reached = static_cast<int>(covered.size());
    const auto latencyAt = [&](double fraction) -> double {
      const int k = static_cast<int>(
          std::ceil(fraction * static_cast<double>(total)));
      if (k <= 0 || s.reached < k) return -1.0;
      return covered[static_cast<std::size_t>(k - 1)].entry.t - imp.t0;
    };
    s.t50 = latencyAt(0.5);
    s.t90 = latencyAt(0.9);
    s.tFull = s.reached == total && !covered.empty()
                  ? covered.back().entry.t - imp.t0
                  : -1.0;
    out.push_back(s);
  }
  return out;
}

std::vector<ProvenanceRow> provenanceRows(const LoadedTrace& trace) {
  // Adoptions per node, time-sorted, for the backwards lineage walk.
  std::map<int, std::vector<const TraceAdopt*>> byNode;
  for (const TraceAdopt& a : trace.adopts) byNode[a.node].push_back(&a);
  for (auto& [node, list] : byNode) {
    (void)node;
    std::stable_sort(list.begin(), list.end(),
                     [](const TraceAdopt* a, const TraceAdopt* b) {
                       return a->t < b->t;
                     });
  }
  // The last adoption of `node` strictly before `t`; nullptr when none.
  const auto lastAdoptBefore = [&](int node, double t) -> const TraceAdopt* {
    const auto it = byNode.find(node);
    if (it == byNode.end()) return nullptr;
    const TraceAdopt* found = nullptr;
    for (const TraceAdopt* a : it->second) {
      if (a->t >= t) break;
      found = a;
    }
    return found;
  };

  std::vector<ProvenanceRow> rows;
  for (const auto& [node, curve] : nodeBestCurves(trace)) {
    ProvenanceRow row;
    row.node = node;
    row.finalLen = curve.empty() ? 0 : curve.back().length;
    row.chain = std::to_string(node);
    // Walk adoption edges back in time. The sender's relevant adoption
    // strictly precedes the receive (transport latency > 0), so the time
    // cursor strictly decreases and the walk terminates.
    int cur = node;
    double cursor = std::numeric_limits<double>::infinity();
    while (true) {
      const TraceAdopt* a = lastAdoptBefore(cur, cursor);
      if (a == nullptr || a->from < 0) break;
      row.chain += " <- " + std::to_string(a->from);
      ++row.chainLen;
      cur = a->from;
      cursor = a->t;
    }
    row.origin = cur;
    rows.push_back(std::move(row));
  }
  return rows;
}

ConvergenceReport convergenceReport(const LoadedTrace& trace,
                                    const std::vector<double>& levels) {
  ConvergenceReport report;
  report.levels = levels;

  const AnytimeCurve global = globalBestCurve(trace);
  if (trace.runEnd.has_value()) {
    report.finalBest = trace.runEnd->integer("best_length");
  } else if (!global.empty()) {
    report.finalBest = global.back().length;
  }

  const auto threshold = [&](double level) {
    return static_cast<std::int64_t>(std::floor(
        static_cast<double>(report.finalBest) * (1.0 + level) + 1e-9));
  };
  for (const double level : levels) {
    report.globalTimes.push_back(timeToReach(global, threshold(level)));
  }
  for (const auto& [node, curve] : nodeBestCurves(trace)) {
    std::vector<double>& times = report.nodeTimes[node];
    times.reserve(levels.size());
    for (const double level : levels) {
      times.push_back(timeToReach(curve, threshold(level)));
    }
  }
  for (const NodeEvent& e : trace.events) {
    if (e.type != NodeEventType::kStall) continue;
    report.stalls.push_back(ConvergenceReport::Stall{
        e.time, e.node, static_cast<double>(e.value) * 1e-3});
  }
  return report;
}

ValidationResult validateTrace(std::istream& in) {
  const LoadedTrace trace = loadTrace(in);
  ValidationResult result;
  result.records = trace.parsedLines;
  result.badLines = trace.badLines;
  result.problems = trace.problems;

  // Bracketing, per run: every run-meta must be closed by a run-end before
  // the next run-meta opens (a serve daemon appends one bracket per job).
  const int runCount = static_cast<int>(trace.runs.size());
  if (runCount == 0) {
    addProblem(result.problems, "missing run-meta record");
  }
  for (int i = 0; i < runCount; ++i) {
    if (trace.runs[static_cast<std::size_t>(i)].runEnd.has_value()) continue;
    if (runCount == 1) {
      addProblem(result.problems, "missing run-end record");
    } else if (i + 1 < runCount) {
      std::ostringstream os;
      os << "run " << i << " has no run-end before run " << i + 1
         << "'s run-meta opens";
      addProblem(result.problems, os.str());
    } else {
      std::ostringstream os;
      os << "run " << i << " is missing its run-end record";
      addProblem(result.problems, os.str());
    }
  }
  if (trace.strayRunEnds > 0) {
    std::ostringstream os;
    os << trace.strayRunEnds
       << " run-end record(s) without a matching open run-meta";
    addProblem(result.problems, os.str());
  }

  // Node-id range: the widest cluster any run declares (jobs in one stream
  // may use different node counts), else the observed maximum.
  int nodes = 0;
  for (const TraceRun& run : trace.runs) {
    if (run.meta.has_value()) {
      nodes = std::max(nodes, static_cast<int>(run.meta->integer("nodes")));
    }
  }
  if (nodes <= 0) nodes = trace.nodeCount();
  const auto checkNode = [&](int node, const char* what) {
    if (node < 0 || node >= nodes) {
      std::ostringstream os;
      os << what << " references node " << node << " outside [0, " << nodes
         << ")";
      addProblem(result.problems, os.str());
    }
  };
  for (const NodeEvent& e : trace.events) checkNode(e.node, "event");
  for (const TraceNodeBest& s : trace.series) checkNode(s.node, "node-best");
  for (const TraceAdopt& a : trace.adopts) {
    checkNode(a.node, "adopt");
    checkNode(a.from, "adopt.from");
  }

  // Causal invariants of the v3 stamps, scoped to the enclosing run (the
  // per-sender seq counters restart with every run bracket): per-run
  // (node, seq) pairs are unique, every receive matches a send emitted in
  // the same run, and the Lamport receive rule ran (receiver's time
  // strictly exceeds the sender stamp).
  std::set<std::tuple<int, int, std::uint64_t>> sentKeys;
  for (const TraceMsgSent& s : trace.sent) {
    checkNode(s.node, "msg-sent");
    if (!sentKeys.insert({s.run, s.node, s.seq}).second) {
      std::ostringstream os;
      os << "duplicate msg-sent seq " << s.seq << " from node " << s.node;
      if (runCount > 1) os << " in run " << s.run;
      addProblem(result.problems, os.str());
    }
  }
  for (const TraceMsgRecv& r : trace.recv) {
    checkNode(r.node, "msg-recv");
    checkNode(r.from, "msg-recv.from");
    if (sentKeys.find({r.run, r.from, r.seq}) == sentKeys.end()) {
      std::ostringstream os;
      os << "msg-recv at node " << r.node << " (from " << r.from << ", seq "
         << r.seq << ") has no matching msg-sent";
      if (runCount > 1) os << " in run " << r.run;
      addProblem(result.problems, os.str());
    }
    if (r.recvLamport <= r.lamport) {
      std::ostringstream os;
      os << "Lamport receive rule violated at node " << r.node << ": recv "
         << r.recvLamport << " <= send stamp " << r.lamport;
      addProblem(result.problems, os.str());
    }
  }
  return result;
}

JobsReport jobsReport(const LoadedTrace& trace) {
  JobsReport report;
  report.total = static_cast<int>(trace.jobs.size());
  double queueSum = 0.0;
  double setupSum = 0.0;
  double solveSum = 0.0;
  for (const TraceJob& j : trace.jobs) {
    if (j.state == "completed") {
      ++report.completed;
    } else if (j.state == "cancelled") {
      ++report.cancelled;
    } else if (j.state == "expired") {
      ++report.expired;
    } else if (j.state == "failed") {
      ++report.failed;
    }
    if (j.cacheHit) ++report.cacheHits;
    if (j.state != "completed") continue;
    queueSum += j.queueSeconds;
    setupSum += j.setupSeconds;
    solveSum += j.solveSeconds;
    report.maxLatencySeconds =
        std::max(report.maxLatencySeconds,
                 j.queueSeconds + j.setupSeconds + j.solveSeconds);
  }
  if (report.completed > 0) {
    const double inv = 1.0 / static_cast<double>(report.completed);
    report.meanQueueSeconds = queueSum * inv;
    report.meanSetupSeconds = setupSum * inv;
    report.meanSolveSeconds = solveSum * inv;
  }
  return report;
}

std::vector<double> parseLevels(const std::string& spec) {
  std::vector<double> levels;
  std::istringstream is(spec);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (item.empty()) continue;
    levels.push_back(std::stod(item));
  }
  return levels;
}

}  // namespace distclk::obs
