// Run-time metrics for the distributed solver: named counters, gauges, and
// fixed-bucket histograms. Recording goes to a per-thread shard (created on
// a thread's first record), so node threads never contend with each other;
// snapshot() merges the shards. All recording paths are branch-on-null
// cheap when no registry is attached — instrumentation is compiled in but
// costs one pointer test per probe in un-traced runs.
//
// Determinism: metrics never feed back into the algorithm; they observe.
// Timestamps are NOT taken here — drivers stamp snapshots with their own
// clock (virtual time under the simulator), so traced simulated runs stay
// bit-reproducible.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/sync.h"

namespace distclk::obs {

/// Opaque handle to a registered metric; cheap to copy, valid for the
/// lifetime of the registry that issued it.
struct MetricId {
  int index = -1;
  bool valid() const noexcept { return index >= 0; }
};

struct HistogramData {
  std::vector<double> bounds;        ///< upper bucket bounds, ascending
  std::vector<std::int64_t> counts;  ///< bounds.size() + 1 (last = overflow)
  std::int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  double mean() const noexcept { return count > 0 ? sum / double(count) : 0.0; }
};

/// Merged view of all shards at one instant.
struct MetricsSnapshot {
  struct Counter {
    std::string name;
    std::int64_t value = 0;
  };
  struct Gauge {
    std::string name;
    double value = 0.0;
    bool everSet = false;
  };
  struct Histogram {
    std::string name;
    HistogramData data;
  };

  std::vector<Counter> counters;
  std::vector<Gauge> gauges;
  std::vector<Histogram> histograms;

  /// Lookup helpers for tests/reports; 0-defaults when absent.
  std::int64_t counterValue(std::string_view name) const;
  const HistogramData* histogram(std::string_view name) const;

  /// Nested JSON: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string toJson() const;
};

/// Thread-safe metric registry with per-thread recording shards.
///
/// Registration (counter/gauge/histogram) is mutex-guarded and idempotent
/// by name; do it at setup time. Recording (add/set/observe) touches only
/// the calling thread's shard under that shard's own mutex, which is
/// uncontended except while a snapshot briefly merges it.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or looks up) a metric. Throws std::invalid_argument when
  /// the name exists with a different kind, or when a histogram's bounds
  /// are empty or not strictly ascending.
  MetricId counter(const std::string& name);
  MetricId gauge(const std::string& name);
  MetricId histogram(const std::string& name, std::vector<double> bounds);

  /// Recording. Invalid ids are ignored (so callers can keep default-
  /// constructed ids in the un-instrumented configuration).
  void add(MetricId id, std::int64_t delta = 1);
  void set(MetricId id, double value);
  void observe(MetricId id, double value);

  /// Merges every thread's shard into one consistent view.
  MetricsSnapshot snapshot() const;

  /// Zeroes all recorded values (registrations are kept).
  void reset();

  /// Evenly spaced bucket bounds helper: {step, 2*step, ..., n*step}.
  static std::vector<double> linearBounds(double step, int n);
  /// Exponential bounds helper: {start, start*factor, ...} (n entries).
  static std::vector<double> exponentialBounds(double start, double factor,
                                               int n);

 private:
  struct Metric;  ///< registered name + kind + bucket layout
  struct Shard;   ///< one thread's values

  Shard& localShard() const;

  const std::uint64_t uid_;  ///< distinguishes registries in thread-local maps
  /// Guards metrics_ and shards_ (structure only); each Shard's values sit
  /// under its own kMetricsShard-ranked lock, acquired inside this one by
  /// snapshot()/reset().
  mutable sync::Mutex mu_{sync::LockRank::kMetricsRegistry,
                          "MetricsRegistry.mu"};
  std::vector<Metric> metrics_ DISTCLK_GUARDED_BY(mu_);
  mutable std::vector<std::unique_ptr<Shard>> shards_ DISTCLK_GUARDED_BY(mu_);
};

/// RAII probe: observes the scope's wall-clock duration (seconds) into a
/// histogram on destruction. With a null registry the clock is never read.
class ScopedTimer {
 public:
  ScopedTimer(MetricsRegistry* registry, MetricId histogram) noexcept;
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  MetricsRegistry* registry_;
  MetricId id_;
  std::int64_t startNs_ = 0;
};

}  // namespace distclk::obs
