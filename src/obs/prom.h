// Prometheus-style text exposition of a MetricsSnapshot, plus an
// atomic-rename file writer. The drivers use this for --metrics-out: every
// metrics interval (and once at run end) the current snapshot is rendered
// and renamed into place, so a scrape/watcher never observes a torn file
// and long runs can be monitored mid-flight (ROADMAP: solver-as-a-service
// needs live SLO views on top of the trace layer).
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace distclk::obs {

/// Renders `snapshot` in the Prometheus text exposition format (v0.0.4):
/// counters/gauges as single samples, histograms as cumulative _bucket
/// series plus _sum/_count. Metric names are prefixed with "distclk_" and
/// sanitized (dots to underscores). `timeSeconds` is exported as the gauge
/// distclk_snapshot_time_seconds (the driver's clock, not wall time).
std::string prometheusText(const MetricsSnapshot& snapshot,
                           double timeSeconds);

/// Writes `content` to `path` atomically: writes "<path>.tmp" then renames
/// over `path`, so readers see either the old or the new snapshot, never a
/// partial one. Returns false on I/O failure (best-effort exposition — the
/// run itself must not die because a metrics file is unwritable).
bool writeFileAtomic(const std::string& path, std::string_view content);

/// prometheusText + writeFileAtomic in one call.
bool writePrometheusSnapshot(const std::string& path,
                             const MetricsSnapshot& snapshot,
                             double timeSeconds);

}  // namespace distclk::obs
