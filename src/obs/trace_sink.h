// Structured run traces: drivers stream one JSON object per line (JSONL)
// to a TraceSink — run metadata, per-node events, periodic metric
// snapshots, and a final result record. The format is what
// tools/trace_report consumes and what EXPERIMENTS.md documents under
// "Capturing and reading traces".
//
// Record types (the "type" field):
//   run-meta  — once, at t=0: instance, seed, parameters, git version
//   event     — a NodeEvent (t, node, event name, value)
//   metrics   — a MetricsSnapshot stamped with the driver's clock
//   run-end   — once: best length, target hit, step/message totals
//   msg-sent  — causal trace: a stamped broadcast left a node (seq, lamport)
//   msg-recv  — causal trace: a stamped message was collected (sender stamp
//               plus the receiver's Lamport time after the receive rule)
//   adopt     — merge kept a received tour; from = the winning sender
//   node-best — periodic per-node best-length series (gap-to-best input)
//
// Timestamps always come from the calling driver's clock (virtual seconds
// under the simulator, per-node wall seconds under threads) — the sink
// never consults a clock for record content, keeping simulated traces
// deterministic. (The optional flush interval reads a steady clock, but
// only to decide when to fflush — never what to write.)
#pragma once

#include <cstdint>
#include <fstream>
#include <ostream>
#include <string>
#include <string_view>

#include "core/trace.h"
#include "obs/metrics.h"
#include "util/sync.h"

namespace distclk::obs {

/// Abstract sink for JSONL trace lines. Implementations must be safe to
/// call from multiple node threads concurrently.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  /// Writes one complete JSON object (no trailing newline in `line`).
  virtual void write(std::string_view line) = 0;
  virtual void flush() {}
};

/// Thread-safe JSONL sink over an ostream or a file. File-backed sinks
/// register themselves for the best-effort flush-on-abnormal-termination
/// handlers (flushAllTraceSinks), so a crashed run keeps its trace tail.
class JsonlTraceSink : public TraceSink {
 public:
  /// Non-owning: caller keeps `os` alive for the sink's lifetime.
  explicit JsonlTraceSink(std::ostream& os);
  /// Owning: opens (truncates) `path`; throws std::runtime_error on failure.
  explicit JsonlTraceSink(const std::string& path);
  ~JsonlTraceSink() override;

  void write(std::string_view line) override;
  void flush() override;
  /// Non-blocking flush used by the termination handlers: skips the sink
  /// (rather than deadlocking) when another thread holds the write lock.
  void tryFlush() noexcept;
  std::int64_t linesWritten() const;

  /// Flush the underlying stream whenever at least `seconds` of wall time
  /// elapsed since the last flush (checked on each write; <= 0 restores the
  /// default of flushing only on flush()/destruction). Bounds how much
  /// trace a hard kill can lose without paying a flush per line.
  void setFlushIntervalSeconds(double seconds);

 private:
  std::ofstream owned_;
  std::ostream& os_;  // stream writes happen under mu_
  mutable sync::Mutex mu_{sync::LockRank::kTraceSink, "JsonlTraceSink.mu"};
  std::int64_t lines_ DISTCLK_GUARDED_BY(mu_) = 0;
  double flushIntervalSeconds_ DISTCLK_GUARDED_BY(mu_) = 0.0;
  std::int64_t lastFlushNs_ DISTCLK_GUARDED_BY(mu_) = 0;
  bool registered_ = false;  // set once in the constructor
};

/// Best-effort flush of every live file-backed JsonlTraceSink. Called from
/// normal (non-signal) context: atexit, the audit pre-abort hook, and
/// serviceTracePendingSignal(); safe to call directly. Uses try-locks
/// throughout, so a thread crashed mid-write is skipped instead of
/// deadlocking.
void flushAllTraceSinks() noexcept;

/// Signal-flush protocol. The SIGINT/SIGTERM handler installed by the
/// first file-backed sink is async-signal-safe: it only records the signal
/// number in an atomic flag (a second delivery before service restores the
/// default action and re-raises immediately). The flag is serviced from
/// normal context — every JsonlTraceSink::write()/flush() checks it after
/// releasing the sink lock, and atexit covers runs that stop writing —
/// by flushing all sinks and re-raising the signal with its default
/// action, so exit status matches an unhandled delivery.
///
/// Pending signal number (0 = none); test/diagnostic hook.
int pendingTraceSignal() noexcept;
/// Flushes all sinks and re-raises the pending signal (no-op when none).
void serviceTracePendingSignal();
/// Drops a recorded signal without servicing it (tests only).
void clearPendingTraceSignal() noexcept;

/// Run-level metadata captured at trace start.
struct RunMeta {
  std::string instance;
  int n = 0;
  std::string algorithm;  ///< "dist-sim" | "dist-threads" | ...
  int nodes = 0;
  std::string topology;
  std::uint64_t seed = 0;
  int cv = 0;
  int cr = 0;
  std::string kick;
  double timeLimitPerNode = 0.0;
  std::string clock;    ///< "virtual" | "wall"
  std::string runtime;  ///< "sim" | "threads" (RuntimeKind of the run)
  int wireVersion = 0;  ///< net/message wire-format version of the build
  /// Multi-tenant attribution (job layer). Empty = standalone run; the
  /// "job" key is then omitted so single-run traces are byte-identical to
  /// pre-job-layer ones.
  std::string job;
};

/// Compile-time version stamp (git describe at configure time).
const char* buildVersion() noexcept;

/// Record builders — each returns one JSON object (no newline).
std::string runMetaRecord(const RunMeta& meta);
std::string eventRecord(const NodeEvent& event);
std::string metricsRecord(double time, const MetricsSnapshot& snapshot);
std::string runEndRecord(double time, std::int64_t bestLength, bool hitTarget,
                         std::int64_t totalSteps, std::int64_t messagesSent);
/// Causal-trace records (wire v3 stamps at the NodeRunner boundaries).
std::string msgSentRecord(double time, int node, std::uint64_t seq,
                          std::uint64_t lamport, std::int64_t length,
                          std::int64_t bytes);
std::string msgRecvRecord(double time, int node, int from, std::uint64_t seq,
                          std::uint64_t lamport, std::uint64_t recvLamport,
                          std::int64_t length);
std::string adoptRecord(double time, int node, int from, std::int64_t length);
std::string nodeBestRecord(double time, int node, std::int64_t best,
                           int noImprovements);
/// Job-layer SLO record (src/svc SolverPool): written once per finished
/// job, after that job's run bracket. `time` is seconds since the pool
/// started; queue/setup/solve are the job's latency decomposition.
/// The prep*Ms fields decompose a cache-miss context build (all zero on a
/// hit — readers treat absent/zero as "no build ran").
std::string jobRecord(double time, const std::string& id,
                      const std::string& state, int priority,
                      std::int64_t best, double queueSeconds,
                      double setupSeconds, double solveSeconds, bool cacheHit,
                      double prepKdtreeMs = 0.0, double prepCandMs = 0.0,
                      double prepConstructMs = 0.0);

}  // namespace distclk::obs
