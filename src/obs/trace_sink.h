// Structured run traces: drivers stream one JSON object per line (JSONL)
// to a TraceSink — run metadata, per-node events, periodic metric
// snapshots, and a final result record. The format is what
// tools/trace_report consumes and what EXPERIMENTS.md documents under
// "Capturing and reading traces".
//
// Record types (the "type" field):
//   run-meta  — once, at t=0: instance, seed, parameters, git version
//   event     — a NodeEvent (t, node, event name, value)
//   metrics   — a MetricsSnapshot stamped with the driver's clock
//   run-end   — once: best length, target hit, step/message totals
//
// Timestamps always come from the calling driver's clock (virtual seconds
// under the simulator, per-node wall seconds under threads) — the sink
// never consults a clock, keeping simulated traces deterministic.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

#include "core/trace.h"
#include "obs/metrics.h"

namespace distclk::obs {

/// Abstract sink for JSONL trace lines. Implementations must be safe to
/// call from multiple node threads concurrently.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  /// Writes one complete JSON object (no trailing newline in `line`).
  virtual void write(std::string_view line) = 0;
  virtual void flush() {}
};

/// Thread-safe JSONL sink over an ostream or a file.
class JsonlTraceSink : public TraceSink {
 public:
  /// Non-owning: caller keeps `os` alive for the sink's lifetime.
  explicit JsonlTraceSink(std::ostream& os);
  /// Owning: opens (truncates) `path`; throws std::runtime_error on failure.
  explicit JsonlTraceSink(const std::string& path);

  void write(std::string_view line) override;
  void flush() override;
  std::int64_t linesWritten() const;

 private:
  std::ofstream owned_;
  std::ostream& os_;
  mutable std::mutex mu_;
  std::int64_t lines_ = 0;
};

/// Run-level metadata captured at trace start.
struct RunMeta {
  std::string instance;
  int n = 0;
  std::string algorithm;  ///< "dist-sim" | "dist-threads" | ...
  int nodes = 0;
  std::string topology;
  std::uint64_t seed = 0;
  int cv = 0;
  int cr = 0;
  std::string kick;
  double timeLimitPerNode = 0.0;
  std::string clock;    ///< "virtual" | "wall"
  std::string runtime;  ///< "sim" | "threads" (RuntimeKind of the run)
  int wireVersion = 0;  ///< net/message wire-format version of the build
};

/// Compile-time version stamp (git describe at configure time).
const char* buildVersion() noexcept;

/// Record builders — each returns one JSON object (no newline).
std::string runMetaRecord(const RunMeta& meta);
std::string eventRecord(const NodeEvent& event);
std::string metricsRecord(double time, const MetricsSnapshot& snapshot);
std::string runEndRecord(double time, std::int64_t bestLength, bool hitTarget,
                         std::int64_t totalSteps, std::int64_t messagesSent);

}  // namespace distclk::obs
