#include "obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <unordered_map>

#include "obs/json.h"

namespace distclk::obs {

std::int64_t MetricsSnapshot::counterValue(std::string_view name) const {
  for (const auto& c : counters)
    if (c.name == name) return c.value;
  return 0;
}

const HistogramData* MetricsSnapshot::histogram(std::string_view name) const {
  for (const auto& h : histograms)
    if (h.name == name) return &h.data;
  return nullptr;
}

std::string MetricsSnapshot::toJson() const {
  JsonObject counterObj;
  for (const auto& c : counters) counterObj.field(c.name, c.value);
  JsonObject gaugeObj;
  for (const auto& g : gauges)
    if (g.everSet) gaugeObj.field(g.name, g.value);
  JsonObject histObj;
  for (const auto& h : histograms) {
    JsonObject one;
    one.field("count", h.data.count)
        .field("sum", h.data.sum)
        .field("min", h.data.count > 0 ? h.data.min : 0.0)
        .field("max", h.data.count > 0 ? h.data.max : 0.0);
    std::string bounds = "[";
    for (std::size_t i = 0; i < h.data.bounds.size(); ++i) {
      if (i) bounds += ',';
      bounds += jsonNumber(h.data.bounds[i]);
    }
    bounds += ']';
    std::string buckets = "[";
    for (std::size_t i = 0; i < h.data.counts.size(); ++i) {
      if (i) buckets += ',';
      buckets += std::to_string(h.data.counts[i]);
    }
    buckets += ']';
    one.raw("bounds", bounds).raw("buckets", buckets);
    histObj.raw(h.name, one.str());
  }
  return JsonObject()
      .raw("counters", counterObj.str())
      .raw("gauges", gaugeObj.str())
      .raw("histograms", histObj.str())
      .str();
}

namespace {

enum class Kind { kCounter, kGauge, kHistogram };

std::uint64_t nextRegistryUid() {
  static std::atomic<std::uint64_t> uid{0};
  return uid.fetch_add(1, std::memory_order_relaxed);
}

/// Global gauge sequence: the highest-sequence set() wins across shards.
std::atomic<std::uint64_t> gGaugeSeq{1};

}  // namespace

struct MetricsRegistry::Metric {
  std::string name;
  Kind kind;
  std::vector<double> bounds;  ///< histogram only
};

struct MetricsRegistry::Shard {
  /// Guards this shard's values. Only the owner thread records into the
  /// shard, so the lock is uncontended except during a snapshot's brief
  /// merge — node threads never wait on each other. Ranked above the
  /// registry lock because snapshot()/reset() take it while holding mu_.
  sync::Mutex mu{sync::LockRank::kMetricsShard, "MetricsRegistry.Shard.mu"};
  struct Slot {
    std::int64_t counter = 0;
    double gauge = 0.0;
    std::uint64_t gaugeSeq = 0;  ///< 0 = never set
    HistogramData hist;          ///< counts sized lazily on first observe
  };
  std::vector<Slot> slots DISTCLK_GUARDED_BY(mu);

  Slot& slot(int index) DISTCLK_REQUIRES(mu) {
    if (index >= static_cast<int>(slots.size()))
      slots.resize(std::size_t(index) + 1);
    return slots[std::size_t(index)];
  }
};

MetricsRegistry::MetricsRegistry() : uid_(nextRegistryUid()) {}
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Shard& MetricsRegistry::localShard() const {
  // Keyed by registry uid (not pointer) so a recycled allocation can never
  // resurrect another registry's stale shard pointer.
  thread_local std::unordered_map<std::uint64_t, Shard*> tls;
  const auto it = tls.find(uid_);
  if (it != tls.end()) return *it->second;
  const sync::MutexLock lock(mu_);
  shards_.push_back(std::make_unique<Shard>());
  Shard* shard = shards_.back().get();
  tls.emplace(uid_, shard);
  return *shard;
}

MetricId MetricsRegistry::counter(const std::string& name) {
  const sync::MutexLock lock(mu_);
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    if (metrics_[i].name != name) continue;
    if (metrics_[i].kind != Kind::kCounter)
      throw std::invalid_argument("metric kind mismatch: " + name);
    return {static_cast<int>(i)};
  }
  metrics_.push_back({name, Kind::kCounter, {}});
  return {static_cast<int>(metrics_.size()) - 1};
}

MetricId MetricsRegistry::gauge(const std::string& name) {
  const sync::MutexLock lock(mu_);
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    if (metrics_[i].name != name) continue;
    if (metrics_[i].kind != Kind::kGauge)
      throw std::invalid_argument("metric kind mismatch: " + name);
    return {static_cast<int>(i)};
  }
  metrics_.push_back({name, Kind::kGauge, {}});
  return {static_cast<int>(metrics_.size()) - 1};
}

MetricId MetricsRegistry::histogram(const std::string& name,
                                    std::vector<double> bounds) {
  if (bounds.empty() || !std::is_sorted(bounds.begin(), bounds.end()) ||
      std::adjacent_find(bounds.begin(), bounds.end()) != bounds.end())
    throw std::invalid_argument("histogram bounds must be strictly ascending: " +
                                name);
  const sync::MutexLock lock(mu_);
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    if (metrics_[i].name != name) continue;
    if (metrics_[i].kind != Kind::kHistogram)
      throw std::invalid_argument("metric kind mismatch: " + name);
    return {static_cast<int>(i)};
  }
  metrics_.push_back({name, Kind::kHistogram, std::move(bounds)});
  return {static_cast<int>(metrics_.size()) - 1};
}

void MetricsRegistry::add(MetricId id, std::int64_t delta) {
  if (!id.valid()) return;
  Shard& shard = localShard();
  const sync::MutexLock lock(shard.mu);
  shard.slot(id.index).counter += delta;
}

void MetricsRegistry::set(MetricId id, double value) {
  if (!id.valid()) return;
  Shard& shard = localShard();
  const sync::MutexLock lock(shard.mu);
  auto& slot = shard.slot(id.index);
  slot.gauge = value;
  slot.gaugeSeq = gGaugeSeq.fetch_add(1, std::memory_order_relaxed);
}

void MetricsRegistry::observe(MetricId id, double value) {
  if (!id.valid()) return;
  std::vector<double> bounds;
  {
    const sync::MutexLock lock(mu_);
    bounds = metrics_[std::size_t(id.index)].bounds;
  }
  Shard& shard = localShard();
  const sync::MutexLock lock(shard.mu);
  auto& hist = shard.slot(id.index).hist;
  if (hist.counts.empty()) {
    hist.bounds = std::move(bounds);
    hist.counts.assign(hist.bounds.size() + 1, 0);
  }
  const auto it =
      std::lower_bound(hist.bounds.begin(), hist.bounds.end(), value);
  ++hist.counts[std::size_t(it - hist.bounds.begin())];
  if (hist.count == 0) {
    hist.min = value;
    hist.max = value;
  } else {
    hist.min = std::min(hist.min, value);
    hist.max = std::max(hist.max, value);
  }
  ++hist.count;
  hist.sum += value;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const sync::MutexLock lock(mu_);
  MetricsSnapshot snap;
  std::vector<std::uint64_t> gaugeSeqs;
  for (const auto& m : metrics_) {
    switch (m.kind) {
      case Kind::kCounter:
        snap.counters.push_back({m.name, 0});
        break;
      case Kind::kGauge:
        snap.gauges.push_back({m.name, 0.0, false});
        break;
      case Kind::kHistogram: {
        MetricsSnapshot::Histogram h;
        h.name = m.name;
        h.data.bounds = m.bounds;
        h.data.counts.assign(m.bounds.size() + 1, 0);
        snap.histograms.push_back(std::move(h));
        break;
      }
    }
  }
  gaugeSeqs.assign(snap.gauges.size(), 0);
  for (const auto& shardPtr : shards_) {
    Shard& shard = *shardPtr;
    const sync::MutexLock shardLock(shard.mu);
    std::size_t ci = 0, gi = 0, hi = 0;
    for (std::size_t m = 0; m < metrics_.size(); ++m) {
      const bool have = m < shard.slots.size();
      switch (metrics_[m].kind) {
        case Kind::kCounter:
          if (have) snap.counters[ci].value += shard.slots[m].counter;
          ++ci;
          break;
        case Kind::kGauge:
          if (have && shard.slots[m].gaugeSeq > gaugeSeqs[gi]) {
            gaugeSeqs[gi] = shard.slots[m].gaugeSeq;
            snap.gauges[gi].value = shard.slots[m].gauge;
            snap.gauges[gi].everSet = true;
          }
          ++gi;
          break;
        case Kind::kHistogram: {
          auto& out = snap.histograms[hi].data;
          if (have && shard.slots[m].hist.count > 0) {
            const auto& in = shard.slots[m].hist;
            for (std::size_t b = 0; b < in.counts.size(); ++b)
              out.counts[b] += in.counts[b];
            if (out.count == 0) {
              out.min = in.min;
              out.max = in.max;
            } else {
              out.min = std::min(out.min, in.min);
              out.max = std::max(out.max, in.max);
            }
            out.count += in.count;
            out.sum += in.sum;
          }
          ++hi;
          break;
        }
      }
    }
  }
  return snap;
}

void MetricsRegistry::reset() {
  const sync::MutexLock lock(mu_);
  for (const auto& shardPtr : shards_) {
    Shard& shard = *shardPtr;
    const sync::MutexLock shardLock(shard.mu);
    for (auto& slot : shard.slots) {
      slot.counter = 0;
      slot.gauge = 0.0;
      slot.gaugeSeq = 0;
      slot.hist = HistogramData{};
    }
  }
}

std::vector<double> MetricsRegistry::linearBounds(double step, int n) {
  std::vector<double> out;
  out.reserve(std::size_t(n));
  for (int i = 1; i <= n; ++i) out.push_back(step * i);
  return out;
}

std::vector<double> MetricsRegistry::exponentialBounds(double start,
                                                       double factor, int n) {
  std::vector<double> out;
  out.reserve(std::size_t(n));
  double v = start;
  for (int i = 0; i < n; ++i, v *= factor) out.push_back(v);
  return out;
}

namespace {
std::int64_t nowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

ScopedTimer::ScopedTimer(MetricsRegistry* registry, MetricId histogram) noexcept
    : registry_(registry), id_(histogram) {
  if (registry_ && id_.valid()) startNs_ = nowNs();
}

ScopedTimer::~ScopedTimer() {
  if (!registry_ || !id_.valid()) return;
  registry_->observe(id_, double(nowNs() - startNs_) * 1e-9);
}

}  // namespace distclk::obs
