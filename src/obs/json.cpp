#include "obs/json.h"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace distclk::obs {

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> buf{};
          std::snprintf(buf.data(), buf.size(), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf.data();
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string jsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  std::array<char, 32> buf{};
  const auto res = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  return std::string(buf.data(), res.ptr);
}

JsonObject& JsonObject::value(std::string_view key, std::string_view rendered) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += jsonEscape(key);
  body_ += "\":";
  body_ += rendered;
  return *this;
}

JsonObject& JsonObject::field(std::string_view key, std::string_view v) {
  return value(key, "\"" + jsonEscape(v) + "\"");
}
JsonObject& JsonObject::field(std::string_view key, const char* v) {
  return field(key, std::string_view(v));
}
JsonObject& JsonObject::field(std::string_view key, const std::string& v) {
  return field(key, std::string_view(v));
}
JsonObject& JsonObject::field(std::string_view key, double v) {
  return value(key, jsonNumber(v));
}
JsonObject& JsonObject::field(std::string_view key, std::int64_t v) {
  return value(key, std::to_string(v));
}
JsonObject& JsonObject::field(std::string_view key, std::uint64_t v) {
  return value(key, std::to_string(v));
}
JsonObject& JsonObject::field(std::string_view key, int v) {
  return value(key, std::to_string(v));
}
JsonObject& JsonObject::field(std::string_view key, bool v) {
  return value(key, v ? "true" : "false");
}
JsonObject& JsonObject::raw(std::string_view key, std::string_view rawJson) {
  return value(key, rawJson);
}

std::string JsonObject::str() const { return "{" + body_ + "}"; }

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

double JsonValue::num(std::string_view key, double def) const {
  const JsonValue* v = find(key);
  return v && v->kind == Kind::kNumber ? v->number : def;
}

std::int64_t JsonValue::integer(std::string_view key, std::int64_t def) const {
  const JsonValue* v = find(key);
  return v && v->kind == Kind::kNumber ? static_cast<std::int64_t>(v->number)
                                       : def;
}

std::string JsonValue::str(std::string_view key, std::string def) const {
  const JsonValue* v = find(key);
  return v && v->kind == Kind::kString ? v->string : def;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parseValue();
    skipWs();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parseValue() {
    skipWs();
    switch (peek()) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = parseString();
        return v;
      }
      case 't':
      case 'f': {
        const bool isTrue = peek() == 't';
        if (!consumeLiteral(isTrue ? "true" : "false")) fail("bad literal");
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = isTrue;
        return v;
      }
      case 'n':
        if (!consumeLiteral("null")) fail("bad literal");
        return JsonValue{};
      default: return parseNumber();
    }
  }

  JsonValue parseObject() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skipWs();
      std::string key = parseString();
      skipWs();
      expect(':');
      v.object.emplace_back(std::move(key), parseValue());
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parseArray() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parseValue());
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= unsigned(h - '0');
            else if (h >= 'a' && h <= 'f') code |= unsigned(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= unsigned(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode (BMP only; trace records never emit surrogates).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue parseNumber() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    double value = 0.0;
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (res.ec != std::errc{} || res.ptr != text_.data() + pos_)
      fail("bad number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = value;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parseJson(std::string_view text) { return Parser(text).parse(); }

}  // namespace distclk::obs
