// Offline analytics over JSONL run traces: loading (skip-and-count on
// garbled lines), reconstruction of per-node and global best-length
// timelines, and the propagation / provenance / convergence analyses that
// tools/trace_report renders. Lives in the library (not the tool) so tests
// can run the analyses in-process against freshly captured traces.
//
// The causal reconstruction leans on three record families the runtime
// emits when tracing is on:
//   msg-sent / msg-recv — wire-v3 stamps (per-sender seq + Lamport time)
//                         at the NodeRunner broadcast/collect boundaries
//   adopt               — which sender's tour a merge actually kept
//   node-best           — periodic per-node best series (gap-to-best)
#pragma once

#include <cstdint>
#include <istream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/trace.h"
#include "obs/json.h"

namespace distclk::obs {

struct TraceMsgSent {
  double t = 0.0;
  int node = -1;
  std::uint64_t seq = 0;
  std::uint64_t lamport = 0;
  std::int64_t len = 0;
  std::int64_t bytes = 0;
  int run = -1;  ///< index of the enclosing run bracket (-1 = before any)
};

struct TraceMsgRecv {
  double t = 0.0;
  int node = -1;
  int from = -1;
  std::uint64_t seq = 0;
  std::uint64_t lamport = 0;      ///< sender's Lamport time at send
  std::uint64_t recvLamport = 0;  ///< receiver's Lamport time after receive
  std::int64_t len = 0;
  int run = -1;  ///< index of the enclosing run bracket (-1 = before any)
};

struct TraceAdopt {
  double t = 0.0;
  int node = -1;
  int from = -1;
  std::int64_t len = 0;
};

struct TraceNodeBest {
  double t = 0.0;
  int node = -1;
  std::int64_t len = 0;
  std::int64_t noImprove = 0;
};

/// One run-meta/run-end bracket in a (possibly multi-run) trace stream.
/// A serve daemon appends one bracket per job to a shared trace file; a
/// standalone run writes exactly one.
struct TraceRun {
  std::optional<JsonValue> meta;
  std::optional<JsonValue> runEnd;
};

/// A job lifecycle record the service layer appends after each job's run
/// bracket (src/svc/solver_pool.cpp).
struct TraceJob {
  double t = 0.0;
  std::string id;
  std::string state;  ///< completed | cancelled | expired | failed
  int priority = 0;
  std::int64_t best = 0;
  double queueSeconds = 0.0;
  double setupSeconds = 0.0;
  double solveSeconds = 0.0;
  bool cacheHit = false;
  /// Cache-miss preprocessing decomposition; zero when the record predates
  /// these fields or the job hit the context cache.
  double prepKdtreeMs = 0.0;
  double prepCandMs = 0.0;
  double prepConstructMs = 0.0;
};

/// One parsed trace. Garbled/unknown lines are skipped and counted, with
/// the first few diagnostics retained; callers decide whether bad lines are
/// fatal (trace_report exits non-zero when badLines > 0).
///
/// Multi-run streams: each run-meta opens a new entry in `runs`; the next
/// run-end closes it. `meta`/`runEnd` keep the single-run view (first meta,
/// last end) so existing analyses keep working on concatenated traces.
struct LoadedTrace {
  std::optional<JsonValue> meta;    ///< first run-meta (legacy single-run view)
  std::optional<JsonValue> runEnd;  ///< last run-end (legacy single-run view)
  std::optional<JsonValue> lastMetrics;
  std::vector<TraceRun> runs;  ///< run brackets in stream order
  int strayRunEnds = 0;        ///< run-end records with no open run-meta
  EventLog events;  ///< sorted by (time, node)
  std::vector<TraceMsgSent> sent;
  std::vector<TraceMsgRecv> recv;
  std::vector<TraceAdopt> adopts;
  std::vector<TraceNodeBest> series;
  std::vector<TraceJob> jobs;  ///< service-layer job records, stream order
  int parsedLines = 0;
  int badLines = 0;
  std::vector<std::string> problems;  ///< first diagnostics, capped

  /// Node count: run-meta's "nodes" when present, else 1 + the highest
  /// node id observed anywhere in the trace.
  int nodeCount() const;
};

LoadedTrace loadTrace(std::istream& in);

/// Global best-so-far curve over the length-carrying events (the same
/// reconstruction the paper's Fig. 2/3 curves use).
AnytimeCurve globalBestCurve(const LoadedTrace& trace);

/// Per-node best-so-far curves from events plus the node-best series.
std::map<int, AnytimeCurve> nodeBestCurves(const LoadedTrace& trace);

// ---------------------------------------------------------------------------
// --propagation: per-improvement broadcast tree

/// How one global improvement spread: who produced it, how many nodes its
/// value reached, how deep the relay tree ran (hops through adopted tours),
/// and the latency percentiles to coverage. A node counts as covered once
/// its local best reaches the improvement's length or better — the value
/// can also arrive via a later, better tour, which still covers it.
struct PropagationSummary {
  std::int64_t len = 0;  ///< the improvement's tour length
  int origin = -1;       ///< node that produced it
  double t0 = 0.0;       ///< when (origin's clock)
  int reached = 0;       ///< nodes covered by end of trace (incl. origin)
  int total = 0;         ///< cluster size
  int maxHops = 0;       ///< deepest relay chain among covered nodes
  /// Latencies from t0 until 50% / 90% / all of the cluster is covered;
  /// -1 when that coverage level was never reached.
  double t50 = -1.0;
  double t90 = -1.0;
  double tFull = -1.0;
};

std::vector<PropagationSummary> propagationSummaries(
    const LoadedTrace& trace);

// ---------------------------------------------------------------------------
// --provenance: which node each node's final tour descends from

/// Lineage of a node's final tour, reconstructed by walking adopt records
/// backwards: each adoption hands the lineage to the sender as of the
/// adoption time; a node with no earlier adoption is the lineage origin.
/// Local refinements (DBM + inner CLK) preserve lineage by construction;
/// a restart that out-improves the held tour is indistinguishable from a
/// local refinement in the trace and counts as one (documented
/// approximation).
struct ProvenanceRow {
  int node = -1;
  std::int64_t finalLen = 0;
  int origin = -1;     ///< root of the adoption chain
  int chainLen = 0;    ///< adoptions walked (0 = self-made tour)
  std::string chain;   ///< e.g. "4 <- 2 <- 0"
};

std::vector<ProvenanceRow> provenanceRows(const LoadedTrace& trace);

// ---------------------------------------------------------------------------
// --convergence: time-to-within-x% per node and global

struct ConvergenceReport {
  std::vector<double> levels;  ///< fractions over the final global best
  std::int64_t finalBest = 0;
  /// Per node and level: first time the node's local best is within the
  /// level of finalBest (infinity = never).
  std::map<int, std::vector<double>> nodeTimes;
  std::vector<double> globalTimes;  ///< same lookup on the global curve
  struct Stall {
    double t = 0.0;
    int node = -1;
    double stalledSeconds = 0.0;  ///< how long progress had been absent
  };
  std::vector<Stall> stalls;  ///< stall-detector events, in time order
};

ConvergenceReport convergenceReport(const LoadedTrace& trace,
                                    const std::vector<double>& levels);

// ---------------------------------------------------------------------------
// --jobs: service-layer job table + SLO aggregates

/// Aggregates over the trace's job records (one per job the service layer
/// finished). Seconds fields aggregate completed jobs only — cancelled or
/// expired jobs have truncated phases that would skew the SLO picture.
struct JobsReport {
  int total = 0;
  int completed = 0;
  int cancelled = 0;
  int expired = 0;
  int failed = 0;
  int cacheHits = 0;  ///< jobs whose InstanceContext came from the cache
  double meanQueueSeconds = 0.0;
  double meanSetupSeconds = 0.0;
  double meanSolveSeconds = 0.0;
  double maxLatencySeconds = 0.0;  ///< max queue+setup+solve over completed
};

JobsReport jobsReport(const LoadedTrace& trace);

// ---------------------------------------------------------------------------
// --validate: trace schema / causal-consistency check

struct ValidationResult {
  int records = 0;   ///< parseable records seen
  int badLines = 0;  ///< unparseable or unknown lines
  std::vector<std::string> problems;  ///< schema/causality violations
  bool ok() const noexcept {
    return records > 0 && badLines == 0 && problems.empty();
  }
};

/// Validates record schemas plus the causal invariants the tracer
/// guarantees: every msg-recv matches an emitted msg-sent (sender, seq),
/// receive Lamport times exceed send stamps, node ids are in range, and
/// run-meta/run-end brackets pair up. Streams with several brackets (a
/// serve daemon appends one per job) are validated per run: each run must
/// close before the next opens, and message causality is scoped to its
/// enclosing run (per-sender seq counters restart across runs).
ValidationResult validateTrace(std::istream& in);

/// Parses a "--levels" spec: comma-separated fractions ("0.05,0.01,0").
std::vector<double> parseLevels(const std::string& spec);

}  // namespace distclk::obs
