#include "obs/trace_sink.h"

#include <stdexcept>

#include "obs/json.h"

#ifndef DISTCLK_GIT_DESCRIBE
#define DISTCLK_GIT_DESCRIBE "unknown"
#endif

namespace distclk::obs {

JsonlTraceSink::JsonlTraceSink(std::ostream& os) : os_(os) {}

JsonlTraceSink::JsonlTraceSink(const std::string& path)
    : owned_(path), os_(owned_) {
  if (!owned_) throw std::runtime_error("JsonlTraceSink: cannot open " + path);
}

void JsonlTraceSink::write(std::string_view line) {
  const std::scoped_lock lock(mu_);
  os_ << line << '\n';
  ++lines_;
}

void JsonlTraceSink::flush() {
  const std::scoped_lock lock(mu_);
  os_.flush();
}

std::int64_t JsonlTraceSink::linesWritten() const {
  const std::scoped_lock lock(mu_);
  return lines_;
}

const char* buildVersion() noexcept { return DISTCLK_GIT_DESCRIBE; }

std::string runMetaRecord(const RunMeta& meta) {
  return JsonObject()
      .field("type", "run-meta")
      .field("instance", meta.instance)
      .field("n", meta.n)
      .field("algorithm", meta.algorithm)
      .field("nodes", meta.nodes)
      .field("topology", meta.topology)
      .field("seed", meta.seed)
      .field("cv", meta.cv)
      .field("cr", meta.cr)
      .field("kick", meta.kick)
      .field("time_limit_per_node", meta.timeLimitPerNode)
      .field("clock", meta.clock)
      .field("runtime", meta.runtime)
      .field("wire_version", meta.wireVersion)
      .field("git", buildVersion())
      .str();
}

std::string eventRecord(const NodeEvent& event) {
  return JsonObject()
      .field("type", "event")
      .field("t", event.time)
      .field("node", event.node)
      .field("event", toString(event.type))
      .field("value", event.value)
      .str();
}

std::string metricsRecord(double time, const MetricsSnapshot& snapshot) {
  return JsonObject()
      .field("type", "metrics")
      .field("t", time)
      .raw("metrics", snapshot.toJson())
      .str();
}

std::string runEndRecord(double time, std::int64_t bestLength, bool hitTarget,
                         std::int64_t totalSteps, std::int64_t messagesSent) {
  return JsonObject()
      .field("type", "run-end")
      .field("t", time)
      .field("best_length", bestLength)
      .field("hit_target", hitTarget)
      .field("total_steps", totalSteps)
      .field("messages_sent", messagesSent)
      .str();
}

}  // namespace distclk::obs
