#include "obs/trace_sink.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "obs/json.h"
#include "util/audit.h"

#ifndef DISTCLK_GIT_DESCRIBE
#define DISTCLK_GIT_DESCRIBE "unknown"
#endif

namespace distclk::obs {

namespace {

std::int64_t steadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Registry of live file-backed sinks, for the abnormal-termination flush.
// Function-local statics so the registry outlives any static sink.
sync::Mutex& sinkRegistryMutex() {
  static sync::Mutex mu(sync::LockRank::kTraceRegistry, "trace.sinkRegistry");
  return mu;
}

std::vector<JsonlTraceSink*>& sinkRegistry() {
  static std::vector<JsonlTraceSink*> sinks;
  return sinks;
}

/// Signal recorded by the handler, pending service from normal context.
/// 0 = none. Lock-free atomics are async-signal-safe; mutexes are not.
std::atomic<int> gPendingSignal{0};

extern "C" void distclkTraceSignalHandler(int sig) {
  // Async-signal-safe by construction: the handler touches only this
  // lock-free atomic plus signal()/raise(), never a mutex or the stream.
  // The flush happens later, from normal context (write()/flush()/atexit
  // call serviceTracePendingSignal()).
  int expected = 0;
  if (!gPendingSignal.compare_exchange_strong(expected, sig,
                                              std::memory_order_acq_rel)) {
    // A second delivery before the first was serviced: the user really
    // wants out — stop borrowing deliveries and die with the default
    // action immediately (the escape hatch from a wedged flush path).
    std::signal(sig, SIG_DFL);
    std::raise(sig);
  }
}

void installTerminationFlush() {
  static bool installed = [] {
    std::signal(SIGINT, distclkTraceSignalHandler);
    std::signal(SIGTERM, distclkTraceSignalHandler);
    // Aborts (including audit failures and SIGABRT's default action) flush
    // via the audit pre-abort hook instead of a SIGABRT handler: the hook
    // runs in normal context where taking try-locks is legitimate.
    audit::setPreAbortHook([] { flushAllTraceSinks(); });
    std::atexit([] {
      flushAllTraceSinks();
      serviceTracePendingSignal();
    });
    return true;
  }();
  (void)installed;
}

void registerSink(JsonlTraceSink* sink) {
  const sync::MutexLock lock(sinkRegistryMutex());
  sinkRegistry().push_back(sink);
}

void unregisterSink(JsonlTraceSink* sink) {
  const sync::MutexLock lock(sinkRegistryMutex());
  auto& sinks = sinkRegistry();
  sinks.erase(std::remove(sinks.begin(), sinks.end(), sink), sinks.end());
}

}  // namespace

void flushAllTraceSinks() noexcept {
  // Try-locks only: a thread that died holding a lock must not wedge the
  // termination path — its sink is skipped (best effort, by design).
  sync::Mutex& mu = sinkRegistryMutex();
  if (!mu.tryLock()) return;
  for (JsonlTraceSink* sink : sinkRegistry()) sink->tryFlush();
  mu.unlock();
}

int pendingTraceSignal() noexcept {
  return gPendingSignal.load(std::memory_order_acquire);
}

void clearPendingTraceSignal() noexcept {
  gPendingSignal.store(0, std::memory_order_release);
}

void serviceTracePendingSignal() {
  const int sig = gPendingSignal.load(std::memory_order_acquire);
  if (sig == 0) return;
  flushAllTraceSinks();
  // Re-raise with the default action so exit status / core behavior is the
  // same as without the handler — we only borrowed the first delivery.
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

JsonlTraceSink::JsonlTraceSink(std::ostream& os) : os_(os) {}

JsonlTraceSink::JsonlTraceSink(const std::string& path)
    : owned_(path), os_(owned_) {
  if (!owned_) throw std::runtime_error("JsonlTraceSink: cannot open " + path);
  installTerminationFlush();
  registerSink(this);
  registered_ = true;
}

JsonlTraceSink::~JsonlTraceSink() {
  if (registered_) unregisterSink(this);
}

void JsonlTraceSink::write(std::string_view line) {
  {
    const sync::MutexLock lock(mu_);
    os_ << line << '\n';
    ++lines_;
    if (flushIntervalSeconds_ > 0.0) {
      const std::int64_t now = steadyNowNs();
      if (double(now - lastFlushNs_) * 1e-9 >= flushIntervalSeconds_) {
        os_.flush();
        lastFlushNs_ = now;
      }
    }
  }
  // After releasing mu_ — so the all-sinks flush can try-lock this sink
  // too — persist everything and die if a termination signal arrived.
  serviceTracePendingSignal();
}

void JsonlTraceSink::flush() {
  {
    const sync::MutexLock lock(mu_);
    os_.flush();
    lastFlushNs_ = steadyNowNs();
  }
  serviceTracePendingSignal();
}

void JsonlTraceSink::tryFlush() noexcept {
  if (!mu_.tryLock()) return;
  os_.flush();
  mu_.unlock();
}

void JsonlTraceSink::setFlushIntervalSeconds(double seconds) {
  const sync::MutexLock lock(mu_);
  flushIntervalSeconds_ = seconds;
  lastFlushNs_ = steadyNowNs();
}

std::int64_t JsonlTraceSink::linesWritten() const {
  const sync::MutexLock lock(mu_);
  return lines_;
}

const char* buildVersion() noexcept { return DISTCLK_GIT_DESCRIBE; }

std::string runMetaRecord(const RunMeta& meta) {
  JsonObject o;
  o.field("type", "run-meta")
      .field("instance", meta.instance)
      .field("n", meta.n)
      .field("algorithm", meta.algorithm)
      .field("nodes", meta.nodes)
      .field("topology", meta.topology)
      .field("seed", meta.seed)
      .field("cv", meta.cv)
      .field("cr", meta.cr)
      .field("kick", meta.kick)
      .field("time_limit_per_node", meta.timeLimitPerNode)
      .field("clock", meta.clock)
      .field("runtime", meta.runtime)
      .field("wire_version", meta.wireVersion);
  // Only multi-tenant (job-layer) runs carry the attribution key, so
  // standalone traces stay byte-identical to earlier schema versions.
  if (!meta.job.empty()) o.field("job", meta.job);
  o.field("git", buildVersion());
  return o.str();
}

std::string eventRecord(const NodeEvent& event) {
  return JsonObject()
      .field("type", "event")
      .field("t", event.time)
      .field("node", event.node)
      .field("event", toString(event.type))
      .field("value", event.value)
      .str();
}

std::string metricsRecord(double time, const MetricsSnapshot& snapshot) {
  return JsonObject()
      .field("type", "metrics")
      .field("t", time)
      .raw("metrics", snapshot.toJson())
      .str();
}

std::string runEndRecord(double time, std::int64_t bestLength, bool hitTarget,
                         std::int64_t totalSteps, std::int64_t messagesSent) {
  return JsonObject()
      .field("type", "run-end")
      .field("t", time)
      .field("best_length", bestLength)
      .field("hit_target", hitTarget)
      .field("total_steps", totalSteps)
      .field("messages_sent", messagesSent)
      .str();
}

std::string msgSentRecord(double time, int node, std::uint64_t seq,
                          std::uint64_t lamport, std::int64_t length,
                          std::int64_t bytes) {
  return JsonObject()
      .field("type", "msg-sent")
      .field("t", time)
      .field("node", node)
      .field("seq", seq)
      .field("lamport", lamport)
      .field("len", length)
      .field("bytes", bytes)
      .str();
}

std::string msgRecvRecord(double time, int node, int from, std::uint64_t seq,
                          std::uint64_t lamport, std::uint64_t recvLamport,
                          std::int64_t length) {
  return JsonObject()
      .field("type", "msg-recv")
      .field("t", time)
      .field("node", node)
      .field("from", from)
      .field("seq", seq)
      .field("lamport", lamport)
      .field("recv_lamport", recvLamport)
      .field("len", length)
      .str();
}

std::string adoptRecord(double time, int node, int from, std::int64_t length) {
  return JsonObject()
      .field("type", "adopt")
      .field("t", time)
      .field("node", node)
      .field("from", from)
      .field("len", length)
      .str();
}

std::string nodeBestRecord(double time, int node, std::int64_t best,
                           int noImprovements) {
  return JsonObject()
      .field("type", "node-best")
      .field("t", time)
      .field("node", node)
      .field("len", best)
      .field("no_improve", noImprovements)
      .str();
}

std::string jobRecord(double time, const std::string& id,
                      const std::string& state, int priority,
                      std::int64_t best, double queueSeconds,
                      double setupSeconds, double solveSeconds, bool cacheHit,
                      double prepKdtreeMs, double prepCandMs,
                      double prepConstructMs) {
  JsonObject o;
  o.field("type", "job")
      .field("t", time)
      .field("id", id)
      .field("state", state)
      .field("priority", priority)
      .field("best", best)
      .field("queue_seconds", queueSeconds)
      .field("setup_seconds", setupSeconds)
      .field("solve_seconds", solveSeconds)
      .field("cache_hit", cacheHit);
  // Emitted only when a build ran: keeps hit records (the common case in a
  // warmed pool) at the pre-existing shape.
  if (prepKdtreeMs > 0.0 || prepCandMs > 0.0 || prepConstructMs > 0.0) {
    o.field("prep_kdtree_ms", prepKdtreeMs)
        .field("prep_cand_ms", prepCandMs)
        .field("prep_construct_ms", prepConstructMs);
  }
  return o.str();
}

}  // namespace distclk::obs
