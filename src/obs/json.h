// Minimal JSON support for the observability layer: an allocation-light
// object builder for the JSONL trace sink and a small recursive-descent
// parser for the trace-report tool. No external dependencies, by design —
// trace records are flat and small, so a full JSON library would be
// overkill.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace distclk::obs {

/// Escapes `s` for use inside a JSON string literal (quotes not included).
std::string jsonEscape(std::string_view s);

/// Formats a double the way JSON expects: shortest round-trip form, no
/// NaN/Inf (clamped to null per RFC 8259's lack of them).
std::string jsonNumber(double v);

/// Streaming builder for one JSON object: {"a":1,"b":"x",...}. Values are
/// emitted in insertion order so trace lines are stable across runs.
class JsonObject {
 public:
  JsonObject& field(std::string_view key, std::string_view value);
  JsonObject& field(std::string_view key, const char* value);
  JsonObject& field(std::string_view key, const std::string& value);
  JsonObject& field(std::string_view key, double value);
  JsonObject& field(std::string_view key, std::int64_t value);
  JsonObject& field(std::string_view key, std::uint64_t value);
  JsonObject& field(std::string_view key, int value);
  JsonObject& field(std::string_view key, bool value);
  /// Inserts `rawJson` verbatim as the value (nested objects/arrays).
  JsonObject& raw(std::string_view key, std::string_view rawJson);

  /// The finished object, e.g. `{"a":1}`. May be called repeatedly.
  std::string str() const;

 private:
  JsonObject& value(std::string_view key, std::string_view rendered);
  std::string body_;
};

/// Parsed JSON value (tree form). Objects preserve key order.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool isObject() const noexcept { return kind == Kind::kObject; }
  bool isArray() const noexcept { return kind == Kind::kArray; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  /// Typed member accessors with defaults (object-only helpers).
  double num(std::string_view key, double def = 0.0) const;
  std::int64_t integer(std::string_view key, std::int64_t def = 0) const;
  std::string str(std::string_view key, std::string def = "") const;
};

/// Parses one complete JSON document. Throws std::runtime_error with a
/// byte offset on malformed input or trailing garbage.
JsonValue parseJson(std::string_view text);

}  // namespace distclk::obs
