#include "obs/prom.h"

#include <cstdio>
#include <fstream>

#include "obs/json.h"

namespace distclk::obs {

namespace {

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Our registry names
/// use dots ("net.sends"); map anything outside the charset to '_' and
/// prefix the exporter namespace.
std::string promName(std::string_view name) {
  std::string out = "distclk_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void appendSample(std::string& out, const std::string& name, double value) {
  out += name;
  out += ' ';
  out += jsonNumber(value);
  out += '\n';
}

}  // namespace

std::string prometheusText(const MetricsSnapshot& snapshot,
                           double timeSeconds) {
  std::string out;
  out += "# TYPE distclk_snapshot_time_seconds gauge\n";
  appendSample(out, "distclk_snapshot_time_seconds", timeSeconds);

  for (const auto& counter : snapshot.counters) {
    const std::string name = promName(counter.name);
    out += "# TYPE " + name + " counter\n";
    appendSample(out, name, double(counter.value));
  }
  for (const auto& gauge : snapshot.gauges) {
    if (!gauge.everSet) continue;
    const std::string name = promName(gauge.name);
    out += "# TYPE " + name + " gauge\n";
    appendSample(out, name, gauge.value);
  }
  for (const auto& hist : snapshot.histograms) {
    const std::string name = promName(hist.name);
    out += "# TYPE " + name + " histogram\n";
    // Buckets are cumulative in the exposition format; registry counts are
    // per-bucket, so accumulate while emitting.
    std::int64_t cumulative = 0;
    for (std::size_t i = 0; i < hist.data.bounds.size(); ++i) {
      cumulative += i < hist.data.counts.size() ? hist.data.counts[i] : 0;
      out += name + "_bucket{le=\"" + jsonNumber(hist.data.bounds[i]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(hist.data.count) +
           "\n";
    appendSample(out, name + "_sum", hist.data.sum);
    out += name + "_count " + std::to_string(hist.data.count) + "\n";
  }
  return out;
}

bool writeFileAtomic(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) return false;
    os.write(content.data(),
             static_cast<std::streamsize>(content.size()));
    os.flush();
    if (!os) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

bool writePrometheusSnapshot(const std::string& path,
                             const MetricsSnapshot& snapshot,
                             double timeSeconds) {
  return writeFileAtomic(path, prometheusText(snapshot, timeSeconds));
}

}  // namespace distclk::obs
