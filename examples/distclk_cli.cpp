// Full command-line solver: the entry point a downstream user would adopt.
// Loads a TSPLIB file or generates a synthetic family, runs the selected
// algorithm, reports quality against the Held-Karp bound, and optionally
// writes the tour in TSPLIB format.
//
//   distclk_cli [options]
//     --file F.tsp          load a TSPLIB instance (else --gen)
//     --gen FAMILY          uniform | clustered | drill | grid | road
//     --n N                 size for --gen (default 1000)
//     --gen-seed S          generator seed (default 1)
//     --algo A              clk | dist | dist-threads | lk | 2opt |
//                           lkh | multilevel | tourmerge   (default dist)
//     --seconds S           time budget (per node for dist*)  (default 2)
//     --kick K              Random|Geometric|Close|Random-walk
//     --spec-workers W      evaluate kicks speculatively on W worker
//                           threads inside each CLK call (clk and dist*;
//                           default 0 = sequential pinned loop)
//     --candidates K        candidate list size (default 10)
//     --quadrant            use quadrant candidate lists
//     --prep-threads T      preprocessing build parallelism (default 1;
//                           byte-identical output for any T)
//     --prep-partition S    Hilbert-partitioned Quick-Borůvka construction
//                           over S shards (default 0 = serial QB)
//     --prep-only           build the preprocessing context, print the
//                           phase times, and exit (pipeline smoke/bench)
//     --seed S              solver seed (default 1)
//     --out F.tour          write the best tour
//     --trace F.jsonl       stream a JSONL run trace (dist*, see
//                           EXPERIMENTS.md "Capturing and reading traces";
//                           read it back with tools/trace_report)
//     --trace-flush-interval S
//                           flush the trace file at least every S wall
//                           seconds (default 0 = only at run end; crashes
//                           additionally trigger a best-effort flush)
//     --print-events        print the distributed event trace to stdout
//
//   Distributed flags (--algo dist / dist-threads), parsed by the shared
//   runConfigFromArgs helper (experiments/harness.h):
//     --runtime R           sim | threads — which substrate runs the EA
//                           (--algo dist-threads == --algo dist --runtime
//                           threads)
//     --nodes K             node count                        (default 8)
//     --topology T          hypercube|ring|grid|complete|star (default hypercube)
//     --latency S           sim link latency in seconds
//     --modeled-work R      charge modeled compute cost (R units/second)
//                           instead of measured wall time, making simulated
//                           runs deterministic for a fixed seed
//     --metrics-interval S  periodic metric snapshots in the trace
//                           (seconds; default 0 = final snapshot only);
//                           also paces the node-best series and the
//                           --metrics-out exposition
//     --metrics-out FILE    write a Prometheus-style text snapshot of the
//                           live metrics to FILE (atomic rename) every
//                           metrics interval and at run end
//     --stall S             log a stall event when no improvement lands
//                           for S per-node seconds (default 0 = off)
//     --fail N:T[,N:T...]   kill node N at per-node time T
//     --join N:T[,N:T...]   node N joins (late) at time T
//     --speeds S0,S1,...    relative node speeds, one per node
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <string>

#include "baselines/lkh_style.h"
#include "baselines/multilevel.h"
#include "baselines/tour_merge.h"
#include "bound/held_karp.h"
#include "core/dist_clk.h"
#include "core/thread_driver.h"
#include "experiments/harness.h"
#include "lk/two_opt.h"
#include "obs/trace_sink.h"
#include "tsp/gen.h"
#include "tsp/tsplib.h"
#include "util/timer.h"

using namespace distclk;

namespace {

Instance makeInstanceFromArgs(const Args& args) {
  const std::string file = args.getString("file", "");
  if (!file.empty()) return loadTsplibFile(file);
  const std::string family = args.getString("gen", "uniform");
  const int n = args.getInt("n", 1000);
  const auto seed = static_cast<std::uint64_t>(args.getInt("gen-seed", 1));
  if (family == "uniform") return uniformSquare("cli-uniform", n, seed);
  if (family == "clustered") return clustered("cli-clustered", n, 10, seed);
  if (family == "drill") return drillPlate("cli-drill", n, seed);
  if (family == "grid") return perforatedGrid("cli-grid", n, seed);
  if (family == "road") return roadNetwork("cli-road", n, seed);
  throw std::invalid_argument("unknown --gen family: " + family);
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  // One preprocessing build path (tsp/instance_context.h): candidate
  // lists, kd-tree, and the construction tour come from the shared
  // immutable context instead of ad-hoc per-algorithm setup.
  const PreprocessParams prep = preprocessParamsFromArgs(args);
  const std::shared_ptr<const InstanceContext> ctx =
      makeContext(makeInstanceFromArgs(args), prep);
  const Instance& inst = ctx->instance();
  const CandidateLists& cand = ctx->candidates();
  const double seconds = args.getDouble("seconds", 2.0);
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
  const KickStrategy kick =
      kickStrategyFromString(args.getString("kick", "Random-walk"));
  const std::string algo = args.getString("algo", "dist");

  std::printf("instance : %s (n=%d, %s)\n", inst.name().c_str(), inst.n(),
              toString(inst.weightType()));
  std::printf("algorithm: %s, %.1fs, kick=%s, candidates=%d\n", algo.c_str(),
              seconds, toString(kick), prep.candidateK);
  const PreprocessBuildStats& prepStats = ctx->buildStats();
  std::printf("prep     : kdtree %.1fms, candidates %.1fms, construct %.1fms"
              " (threads=%d, total %.1fms)\n",
              prepStats.kdtreeMs, prepStats.candMs, prepStats.constructMs,
              prepStats.threads, prepStats.totalMs);
  if (args.has("prep-only")) {
    std::printf("result   : construction %lld (prep-only)\n",
                static_cast<long long>(ctx->constructionLength()));
    return 0;
  }

  Timer timer;
  std::vector<int> bestOrder;

  // JSONL run trace (dist algorithms only — the single-process baselines
  // have no node/network activity to record).
  const std::string tracePath = args.getString("trace", "");
  std::optional<obs::JsonlTraceSink> traceSink;
  if (!tracePath.empty()) {
    if (algo != "dist" && algo != "dist-threads") {
      std::fprintf(stderr, "--trace requires --algo dist or dist-threads\n");
      return 1;
    }
    traceSink.emplace(tracePath);
    // Durability: bound how much trace a hard kill can lose (the crash
    // handlers flush best-effort; this flushes on a wall-clock cadence).
    const double flushEvery = args.getDouble("trace-flush-interval", 0.0);
    if (flushEvery > 0.0) traceSink->setFlushIntervalSeconds(flushEvery);
  }

  if (algo == "clk") {
    Rng rng(seed);
    Tour tour(inst, ctx->constructionOrder());
    ClkOptions opt;
    opt.kick = kick;
    opt.timeLimitSeconds = seconds;
    opt.speculativeWorkers = args.getInt("spec-workers", 0);
    const ClkResult res = chainedLinKernighan(tour, cand, rng, opt);
    bestOrder = tour.orderVector();
    std::printf("result   : %lld (%lld kicks, %lld improvements)\n",
                static_cast<long long>(res.length),
                static_cast<long long>(res.kicks),
                static_cast<long long>(res.improvements));
    if (res.speculated > 0)
      std::printf("spec     : %lld evaluated, %lld committed, %lld conflicts\n",
                  static_cast<long long>(res.speculated),
                  static_cast<long long>(res.specCommitted),
                  static_cast<long long>(res.specConflicts));
  } else if (algo == "dist" || algo == "dist-threads") {
    RunConfig cfg = runConfigFromArgs(args, inst);
    if (algo == "dist-threads") cfg.runtime = RuntimeKind::kThreads;
    cfg.timeLimitPerNode = seconds;
    cfg.seed = seed;
    if (traceSink) cfg.trace = &*traceSink;
    const RunResult res = runDistributed(ctx, cfg);
    bestOrder = res.bestOrder;
    std::printf("result   : %lld on %s runtime (%lld steps, %lld broadcasts, "
                "%lld restarts, %lld wire bytes)\n",
                static_cast<long long>(res.bestLength), toString(cfg.runtime),
                static_cast<long long>(res.totalSteps),
                static_cast<long long>(res.net.broadcasts),
                static_cast<long long>(res.totalRestarts),
                static_cast<long long>(res.net.bytesSent));
    if (args.has("print-events")) {
      for (const auto& e : res.events)
        std::printf("  t=%8.3fs node %d  %-18s %lld\n", e.time, e.node,
                    toString(e.type), static_cast<long long>(e.value));
    }
  } else if (algo == "lk" || algo == "2opt") {
    Tour tour(inst, ctx->constructionOrder());
    if (algo == "lk")
      linKernighanOptimize(tour, cand);
    else
      twoOptOptimize(tour, cand);
    bestOrder = tour.orderVector();
    std::printf("result   : %lld\n", static_cast<long long>(tour.length()));
  } else if (algo == "lkh") {
    Rng rng(seed);
    LkhStyleOptions opt;
    opt.timeLimitSeconds = seconds;
    opt.trials = 1000000;  // time-bounded
    const LkhStyleResult res = lkhStyleSolve(inst, rng, opt);
    bestOrder = res.order;
    std::printf("result   : %lld (%d trials)\n",
                static_cast<long long>(res.length), res.trialsRun);
  } else if (algo == "multilevel") {
    Rng rng(seed);
    const MultilevelResult res = multilevelSolve(inst, rng);
    bestOrder = res.order;
    std::printf("result   : %lld (%d levels)\n",
                static_cast<long long>(res.length), res.levels);
  } else if (algo == "tourmerge") {
    Rng rng(seed);
    const TourMergeResult res = tourMergeSolve(inst, rng);
    bestOrder = res.order;
    std::printf("result   : %lld (union %d edges, best run %lld)\n",
                static_cast<long long>(res.length), res.unionEdges,
                static_cast<long long>(res.bestRunLength));
  } else {
    std::fprintf(stderr, "unknown --algo '%s'\n", algo.c_str());
    return 1;
  }

  const std::int64_t length = inst.tourLength(bestOrder);
  std::printf("wall time: %.2fs\n", timer.seconds());
  if (inst.n() <= 20000) {
    const HeldKarpResult hk = heldKarpBound(inst);
    std::printf("held-karp: %.0f -> %.3f%% above (NB: loose on clustered "
                "geometry)\n",
                hk.bound,
                (static_cast<double>(length) / hk.bound - 1.0) * 100.0);
  }

  const std::string out = args.getString("out", "");
  if (!out.empty()) {
    std::ofstream stream(out);
    writeTsplibTour(stream, inst.name() + ".best", bestOrder);
    std::printf("wrote    : %s\n", out.c_str());
  }
  if (traceSink)
    std::printf("trace    : %s (%lld records)\n", tracePath.c_str(),
                static_cast<long long>(traceSink->linesWritten()));
  return 0;
}
