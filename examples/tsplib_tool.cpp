// TSPLIB workbench: load a .tsp file (or generate a stand-in), compare all
// construction heuristics and optimizers, and optionally save the best tour
// as a TSPLIB .tour file.
//
//   ./tsplib_tool [file.tsp] [--out best.tour] [--seconds S]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "bound/held_karp.h"
#include "construct/construct.h"
#include "lk/chained_lk.h"
#include "lk/lin_kernighan.h"
#include "lk/or_opt.h"
#include "lk/two_opt.h"
#include "tsp/gen.h"
#include "tsp/neighbors.h"
#include "tsp/tour.h"
#include "tsp/tsplib.h"
#include "util/rng.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace distclk;
  std::string file, outFile;
  double seconds = 2.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) outFile = argv[++i];
    else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc)
      seconds = std::atof(argv[++i]);
    else file = argv[i];
  }

  const Instance inst = file.empty()
                            ? clustered("demo-c1k", 1000, 10, 3)
                            : loadTsplibFile(file);
  std::printf("instance %s: n=%d type=%s\n", inst.name().c_str(), inst.n(),
              toString(inst.weightType()));

  const CandidateLists cand(inst, 10);
  Rng rng(1);

  auto report = [&](const char* name, const std::vector<int>& order,
                    double secs) {
    std::printf("  %-16s %12lld   (%.3fs)\n", name,
                static_cast<long long>(inst.tourLength(order)), secs);
  };

  std::printf("construction heuristics:\n");
  {
    Timer t;
    const auto o = randomTour(inst, rng);
    report("random", o, t.seconds());
  }
  {
    Timer t;
    const auto o = spaceFillingTour(inst);
    report("hilbert", o, t.seconds());
  }
  {
    Timer t;
    const auto o = nearestNeighborTour(inst);
    report("nearest-neighbor", o, t.seconds());
  }
  {
    Timer t;
    const auto o = greedyTour(inst, cand);
    report("greedy", o, t.seconds());
  }
  Timer qbTimer;
  const auto qb = quickBoruvkaTour(inst, cand);
  report("quick-boruvka", qb, qbTimer.seconds());

  std::printf("local search from the Quick-Boruvka tour:\n");
  {
    Timer t;
    Tour tour(inst, qb);
    twoOptOptimize(tour, cand);
    report("2-opt", tour.orderVector(), t.seconds());
  }
  {
    Timer t;
    Tour tour(inst, qb);
    twoOptOptimize(tour, cand);
    orOptOptimize(tour, cand);
    report("2-opt + or-opt", tour.orderVector(), t.seconds());
  }
  {
    Timer t;
    Tour tour(inst, qb);
    linKernighanOptimize(tour, cand);
    report("lin-kernighan", tour.orderVector(), t.seconds());
  }
  Tour best(inst, qb);
  {
    Timer t;
    ClkOptions opt;
    opt.timeLimitSeconds = seconds;
    chainedLinKernighan(best, cand, rng, opt);
    report("chained-lk", best.orderVector(), t.seconds());
  }

  const HeldKarpResult hk = heldKarpBound(inst);
  std::printf("held-karp bound: %.0f -> best is %.3f%% above\n", hk.bound,
              (static_cast<double>(best.length()) / hk.bound - 1.0) * 100.0);

  if (!outFile.empty()) {
    std::ofstream out(outFile);
    writeTsplibTour(out, inst.name() + ".best", best.orderVector());
    std::printf("wrote %s\n", outFile.c_str());
  }
  return 0;
}
