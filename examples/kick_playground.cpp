// Kick playground: how the four ABCC double-bridge kicking strategies
// behave on different instance families — the damage each kick inflicts,
// how much of it LK repairs, and the resulting CLK performance (a miniature
// of the paper's Fig. 2a/2b).
//
//   ./kick_playground [n] [kicks]
#include <cstdio>
#include <cstdlib>

#include "construct/construct.h"
#include "lk/chained_lk.h"
#include "lk/lin_kernighan.h"
#include "tsp/gen.h"
#include "tsp/neighbors.h"
#include "tsp/tour.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace distclk;
  const int n = argc > 1 ? std::atoi(argv[1]) : 600;
  const int kicks = argc > 2 ? std::atoi(argv[2]) : 200;

  const KickStrategy strategies[] = {
      KickStrategy::kRandom, KickStrategy::kGeometric, KickStrategy::kClose,
      KickStrategy::kRandomWalk};

  struct Family {
    const char* name;
    Instance inst;
  };
  Family families[] = {
      {"uniform", uniformSquare("u", n, 11)},
      {"clustered", clustered("c", n, 10, 12)},
      {"drill-plate", drillPlate("d", n, 13)},
  };

  for (const auto& fam : families) {
    const CandidateLists cand(fam.inst, 10);
    Rng rng(5);
    Tour base(fam.inst, quickBoruvkaTour(fam.inst, cand));
    linKernighanOptimize(base, cand);
    std::printf("\n%s (n=%d), LK optimum %lld\n", fam.name, n,
                static_cast<long long>(base.length()));
    std::printf("  %-12s %10s %10s %12s\n", "kick", "damage", "repaired",
                "clk-final");
    for (KickStrategy s : strategies) {
      // Average kick damage and post-repair quality over a few kicks.
      double damage = 0, repaired = 0;
      for (int i = 0; i < 10; ++i) {
        Tour t = base;
        const auto dirty = applyKick(t, s, cand, rng);
        damage += static_cast<double>(t.length() - base.length());
        linKernighanOptimize(t, cand, dirty, LkOptions{});
        repaired += static_cast<double>(t.length() - base.length());
      }
      // Full CLK run with this strategy.
      Tour t = base;
      ClkOptions opt;
      opt.kick = s;
      opt.maxKicks = kicks;
      chainedLinKernighan(t, cand, rng, opt);
      std::printf("  %-12s %10.0f %10.0f %12lld\n", toString(s), damage / 10,
                  repaired / 10, static_cast<long long>(t.length()));
    }
  }
  return 0;
}
