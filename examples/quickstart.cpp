// Quickstart: generate a random TSP instance, build a starting tour, run
// Chained Lin-Kernighan, and compare against the Held-Karp lower bound.
//
//   ./quickstart [n] [seconds]
#include <cstdio>
#include <cstdlib>

#include "bound/held_karp.h"
#include "construct/construct.h"
#include "lk/chained_lk.h"
#include "tsp/gen.h"
#include "tsp/neighbors.h"
#include "tsp/tour.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace distclk;
  const int n = argc > 1 ? std::atoi(argv[1]) : 1000;
  const double seconds = argc > 2 ? std::atof(argv[2]) : 2.0;

  // 1. An instance: 'n' cities uniform in a square (TSPLIB files load via
  //    loadTsplibFile() instead).
  const Instance inst = uniformSquare("quickstart", n, /*seed=*/42);
  std::printf("instance  : %s (n=%d, %s)\n", inst.name().c_str(), inst.n(),
              toString(inst.weightType()));

  // 2. Candidate lists: LK only looks at each city's k nearest neighbors.
  const CandidateLists cand(inst, 10);

  // 3. A starting tour from the Quick-Boruvka construction (ABCC default).
  Tour tour(inst, quickBoruvkaTour(inst, cand));
  std::printf("construct : %lld (Quick-Boruvka)\n",
              static_cast<long long>(tour.length()));

  // 4. Chained LK: LK to a local optimum, then double-bridge kicks.
  Rng rng(7);
  ClkOptions opt;
  opt.kick = KickStrategy::kRandomWalk;  // linkern's default
  opt.timeLimitSeconds = seconds;
  const ClkResult res = chainedLinKernighan(
      tour, cand, rng, opt, [](double t, std::int64_t len) {
        std::printf("  %7.2fs  %lld\n", t, static_cast<long long>(len));
      });
  std::printf("chained-lk: %lld after %lld kicks (%.2fs)\n",
              static_cast<long long>(res.length),
              static_cast<long long>(res.kicks), res.seconds);

  // 5. How good is that? Compare to the Held-Karp lower bound.
  const HeldKarpResult hk = heldKarpBound(inst);
  std::printf("held-karp : %.0f (%s)\n", hk.bound,
              hk.exact ? "exact 1-trees" : "candidate estimate");
  std::printf("excess    : %.3f%% above the bound\n",
              (static_cast<double>(res.length) / hk.bound - 1.0) * 100.0);
  return 0;
}
