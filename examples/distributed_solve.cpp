// Distributed solve: the paper's 8-node hypercube on a clustered instance,
// on either runtime substrate. Prints the global anytime curve, the
// per-node event trace (improvements, broadcasts, perturbation-level
// changes, restarts, failures, joins) and the message statistics of §4.
//
//   ./distributed_solve [n] [nodes] [seconds-per-node] [flags]
//
// The legacy positional arguments stay; every flag of the shared
// runConfigFromArgs helper works too (experiments/harness.h), e.g.:
//   ./distributed_solve 800 8 1.5 --runtime threads --fail 0:0.5,1:0.5
// Add --trace F.jsonl to capture a causal JSONL trace of the run (same
// format as distclk_cli; analyze with tools/trace_report).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <optional>

#include "core/runtime.h"
#include "experiments/harness.h"
#include "obs/trace_sink.h"
#include "tsp/gen.h"
#include "tsp/neighbors.h"

int main(int argc, char** argv) {
  using namespace distclk;
  // Leading non-flag tokens are the legacy positionals; flags follow.
  int argi = 1;
  auto positional = [&](double def) {
    return argi < argc && argv[argi][0] != '-' ? std::atof(argv[argi++]) : def;
  };
  const int n = static_cast<int>(positional(800));
  const int nodes = static_cast<int>(positional(8));
  const double budget = positional(1.5);
  const Args args(argc, argv);

  // Shared preprocessing build path: candidates + construction tour come
  // from the immutable InstanceContext (tsp/instance_context.h).
  const std::shared_ptr<const InstanceContext> ctx = makeContext(
      clustered("dist-demo", n, 10, /*seed=*/9), preprocessParamsFromArgs(args));
  const Instance& inst = ctx->instance();

  RunConfig cfg = runConfigFromArgs(args, inst);
  // Positional values and demo defaults, unless overridden by flags.
  cfg.nodes = args.getInt("nodes", nodes);
  cfg.timeLimitPerNode = args.getDouble("seconds", budget);
  cfg.seed = static_cast<std::uint64_t>(args.getInt("seed", 4));
  cfg.node.clkKicksPerCall = std::max(20, n / 10);

  std::optional<obs::JsonlTraceSink> traceSink;
  const std::string tracePath = args.getString("trace", "");
  if (!tracePath.empty()) {
    traceSink.emplace(tracePath);
    cfg.trace = &*traceSink;
  }

  std::printf("running %d nodes (%s) on %s, %.1fs CPU each, %s runtime\n",
              cfg.nodes, toString(cfg.topology), inst.name().c_str(),
              cfg.timeLimitPerNode, toString(cfg.runtime));
  const RunResult res = runDistributed(ctx, cfg);

  std::printf("\nanytime curve (per-node CPU seconds -> global best):\n");
  for (const auto& p : res.curve)
    std::printf("  %8.3fs  %lld\n", p.time, static_cast<long long>(p.length));

  std::printf("\nevent trace:\n");
  for (const auto& e : res.events)
    std::printf("  t=%8.3fs node %d  %-18s %lld\n", e.time, e.node,
                toString(e.type), static_cast<long long>(e.value));

  std::printf("\nmessages: %lld broadcasts, %lld deliveries, %lld bytes\n",
              static_cast<long long>(res.net.broadcasts),
              static_cast<long long>(res.net.messagesSent),
              static_cast<long long>(res.net.bytesSent));
  std::printf("best tour: %lld after %lld EA steps (%lld restarts)\n",
              static_cast<long long>(res.bestLength),
              static_cast<long long>(res.totalSteps),
              static_cast<long long>(res.totalRestarts));
  return 0;
}
