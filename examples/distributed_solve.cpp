// Distributed solve: the paper's 8-node hypercube on a clustered instance,
// run on the discrete-event simulator. Prints the global anytime curve, the
// per-node event trace (improvements, broadcasts, perturbation-level
// changes, restarts) and the message statistics of §4.
//
//   ./distributed_solve [n] [nodes] [seconds-per-node]
#include <cstdio>
#include <cstdlib>

#include "core/dist_clk.h"
#include "tsp/gen.h"
#include "tsp/neighbors.h"

int main(int argc, char** argv) {
  using namespace distclk;
  const int n = argc > 1 ? std::atoi(argv[1]) : 800;
  const int nodes = argc > 2 ? std::atoi(argv[2]) : 8;
  const double budget = argc > 3 ? std::atof(argv[3]) : 1.5;

  const Instance inst = clustered("dist-demo", n, 10, /*seed=*/9);
  const CandidateLists cand(inst, 10);

  SimOptions opt;
  opt.nodes = nodes;
  opt.topology = TopologyKind::kHypercube;
  opt.timeLimitPerNode = budget;
  opt.node.clkKicksPerCall = std::max(20, n / 10);
  opt.seed = 4;

  std::printf("running %d nodes (hypercube) on %s, %.1fs virtual CPU each\n",
              nodes, inst.name().c_str(), budget);
  const SimResult res = runSimulatedDistClk(inst, cand, opt);

  std::printf("\nanytime curve (per-node CPU seconds -> global best):\n");
  for (const auto& p : res.curve)
    std::printf("  %8.3fs  %lld\n", p.time, static_cast<long long>(p.length));

  std::printf("\nevent trace:\n");
  for (const auto& e : res.events)
    std::printf("  t=%8.3fs node %d  %-18s %lld\n", e.time, e.node,
                toString(e.type), static_cast<long long>(e.value));

  std::printf("\nmessages: %lld broadcasts, %lld deliveries, %lld bytes\n",
              static_cast<long long>(res.net.broadcasts),
              static_cast<long long>(res.net.messagesSent),
              static_cast<long long>(res.net.bytesSent));
  std::printf("best tour: %lld after %lld EA steps (%lld restarts)\n",
              static_cast<long long>(res.bestLength),
              static_cast<long long>(res.totalSteps),
              static_cast<long long>(res.totalRestarts));
  return 0;
}
